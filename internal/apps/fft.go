package apps

import (
	"fmt"
	"math"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/stlib"
)

// FFT builds the fft benchmark: recursive radix-2 decimation-in-time
// Cooley-Tukey over n complex points (n a power of two), with both halves
// forked. Scratch arrays t1/t2 hold the even/odd shuffle; the twiddle
// factors come from the sin/cos library builtins.
func FFT(n int64, v Variant, seed uint64) *Workload {
	if n&(n-1) != 0 || n < 2 {
		panic("fft: n must be a power of two >= 2")
	}
	u := stUnit()

	if v == Seq {
		addFFT(u, false)
		m := u.Proc("fft_main", 5, 0)
		for i := 0; i < 5; i++ {
			m.LoadArg(isa.T0, i)
			m.SetArg(i, isa.T0)
		}
		m.Call("fft")
		m.Const(isa.RV, 0)
		m.Ret(isa.RV)
		w := &Workload{Name: "fft", Variant: Seq, Procs: u.MustBuild(), Entry: "fft_main"}
		fftSetup(w, n, seed)
		return w
	}

	addFFT(u, true)
	m := u.Proc("fft_main", 5, stlib.JCWords)
	m.LocalAddr(isa.R0, 0)
	m.SetArg(0, isa.R0)
	m.Const(isa.T0, 1)
	m.SetArg(1, isa.T0)
	m.Call(stlib.ProcJCInit)
	for i := 0; i < 5; i++ {
		m.LoadArg(isa.T0, i)
		m.SetArg(i, isa.T0)
	}
	m.SetArg(5, isa.R0)
	m.Fork("fft")
	m.Poll()
	m.SetArg(0, isa.R0)
	m.Call(stlib.ProcJCJoin)
	m.Const(isa.RV, 0)
	m.Ret(isa.RV)
	stlib.AddBoot(u, "fft_main", 5)
	w := &Workload{Name: "fft", Variant: ST, Procs: u.MustBuild(), Entry: stlib.ProcBoot}
	fftSetup(w, n, seed)
	return w
}

// addFFT emits fft(re, im, t1, t2, n[, jc]).
func addFFT(u *asm.Unit, st bool) {
	nArgs := 5
	nLocals := 0
	if st {
		nArgs, nLocals = 6, stlib.JCWords
	}
	b := u.Proc("fft", nArgs, nLocals)
	rec := b.NewLabel()
	shuf := b.NewLabel()
	shufDone := b.NewLabel()
	comb := b.NewLabel()
	combDone := b.NewLabel()

	b.LoadArg(isa.R0, 0) // re
	b.LoadArg(isa.R1, 1) // im
	b.LoadArg(isa.R2, 2) // t1
	b.LoadArg(isa.R3, 3) // t2
	b.LoadArg(isa.R4, 4) // n
	if st {
		b.LoadArg(isa.R7, 5) // parent jc
	}
	b.BgtI(isa.R4, 1, rec)
	if st {
		b.SetArg(0, isa.R7)
		b.Call(stlib.ProcJCFinish)
	}
	b.RetVoid()

	b.Bind(rec)
	b.Const(isa.T0, 2)
	b.Div(isa.R5, isa.R4, isa.T0) // h

	// Shuffle: t1/t2 get evens in [0,h) and odds in [h,n).
	b.Const(isa.T6, 0) // i
	b.Bind(shuf)
	b.Bge(isa.T6, isa.R5, shufDone)
	b.Add(isa.T0, isa.T6, isa.T6) // 2i
	b.Add(isa.T1, isa.R0, isa.T0)
	b.Load(isa.T2, isa.T1, 0) // re[2i]
	b.Add(isa.T3, isa.R2, isa.T6)
	b.Store(isa.T3, 0, isa.T2)
	b.Load(isa.T2, isa.T1, 1) // re[2i+1]
	b.Add(isa.T3, isa.T3, isa.R5)
	b.Store(isa.T3, 0, isa.T2)
	b.Add(isa.T1, isa.R1, isa.T0)
	b.Load(isa.T2, isa.T1, 0) // im[2i]
	b.Add(isa.T3, isa.R3, isa.T6)
	b.Store(isa.T3, 0, isa.T2)
	b.Load(isa.T2, isa.T1, 1) // im[2i+1]
	b.Add(isa.T3, isa.T3, isa.R5)
	b.Store(isa.T3, 0, isa.T2)
	b.AddI(isa.T6, isa.T6, 1)
	b.Jmp(shuf)
	b.Bind(shufDone)
	b.SetArg(0, isa.R0)
	b.SetArg(1, isa.R2)
	b.SetArg(2, isa.R4)
	b.Call("memcpy")
	b.SetArg(0, isa.R1)
	b.SetArg(1, isa.R3)
	b.SetArg(2, isa.R4)
	b.Call("memcpy")

	// Recurse on the halves (each half uses its own half of the scratch).
	if st {
		b.LocalAddr(isa.T1, 0)
		b.SetArg(0, isa.T1)
		b.Const(isa.T0, 2)
		b.SetArg(1, isa.T0)
		b.Call(stlib.ProcJCInit)
	}
	b.SetArg(0, isa.R0)
	b.SetArg(1, isa.R1)
	b.SetArg(2, isa.R2)
	b.SetArg(3, isa.R3)
	b.SetArg(4, isa.R5)
	if st {
		b.LocalAddr(isa.T1, 0)
		b.SetArg(5, isa.T1)
		b.Fork("fft")
		b.Poll()
	} else {
		b.Call("fft")
	}
	b.Add(isa.T0, isa.R0, isa.R5)
	b.SetArg(0, isa.T0)
	b.Add(isa.T0, isa.R1, isa.R5)
	b.SetArg(1, isa.T0)
	b.Add(isa.T0, isa.R2, isa.R5)
	b.SetArg(2, isa.T0)
	b.Add(isa.T0, isa.R3, isa.R5)
	b.SetArg(3, isa.T0)
	b.SetArg(4, isa.R5)
	if st {
		b.LocalAddr(isa.T1, 0)
		b.SetArg(5, isa.T1)
		b.Fork("fft")
		b.Poll()
		b.LocalAddr(isa.T1, 0)
		b.SetArg(0, isa.T1)
		b.Call(stlib.ProcJCJoin)
	} else {
		b.Call("fft")
	}

	// Combine. R6 = -2π/n (bits), R4 reused as i, R2/R3 free as wr/wi.
	b.ConstF(isa.T0, -2*math.Pi)
	b.ItoF(isa.T1, isa.R4)
	b.FDiv(isa.T0, isa.T0, isa.T1)
	b.Mov(isa.R6, isa.T0)
	b.Const(isa.R4, 0) // i
	b.Bind(comb)
	b.Bge(isa.R4, isa.R5, combDone)
	b.ItoF(isa.T0, isa.R4)
	b.FMul(isa.T0, isa.T0, isa.R6) // angle
	b.SetArg(0, isa.T0)
	b.Call("cos")
	b.Mov(isa.R2, isa.RV) // wr
	b.ItoF(isa.T0, isa.R4)
	b.FMul(isa.T0, isa.T0, isa.R6)
	b.SetArg(0, isa.T0)
	b.Call("sin")
	b.Mov(isa.R3, isa.RV) // wi
	// even/odd loads
	b.Add(isa.T0, isa.R0, isa.R4)
	b.Load(isa.T1, isa.T0, 0) // er
	b.Add(isa.T0, isa.R1, isa.R4)
	b.Load(isa.T2, isa.T0, 0) // ei
	b.Add(isa.T0, isa.R0, isa.R4)
	b.Add(isa.T0, isa.T0, isa.R5)
	b.Load(isa.T3, isa.T0, 0) // or
	b.Add(isa.T0, isa.R1, isa.R4)
	b.Add(isa.T0, isa.T0, isa.R5)
	b.Load(isa.T4, isa.T0, 0) // oi
	// tr = wr*or - wi*oi ; ti = wr*oi + wi*or
	b.FMul(isa.T5, isa.R2, isa.T3)
	b.FMul(isa.T6, isa.R3, isa.T4)
	b.FSub(isa.T5, isa.T5, isa.T6) // tr
	b.FMul(isa.T6, isa.R2, isa.T4)
	b.FMul(isa.T0, isa.R3, isa.T3)
	b.FAdd(isa.T6, isa.T6, isa.T0) // ti
	// write back
	b.FAdd(isa.T0, isa.T1, isa.T5)
	b.Add(isa.T3, isa.R0, isa.R4)
	b.Store(isa.T3, 0, isa.T0)
	b.FAdd(isa.T0, isa.T2, isa.T6)
	b.Add(isa.T3, isa.R1, isa.R4)
	b.Store(isa.T3, 0, isa.T0)
	b.FSub(isa.T0, isa.T1, isa.T5)
	b.Add(isa.T3, isa.R0, isa.R4)
	b.Add(isa.T3, isa.T3, isa.R5)
	b.Store(isa.T3, 0, isa.T0)
	b.FSub(isa.T0, isa.T2, isa.T6)
	b.Add(isa.T3, isa.R1, isa.R4)
	b.Add(isa.T3, isa.T3, isa.R5)
	b.Store(isa.T3, 0, isa.T0)
	b.AddI(isa.R4, isa.R4, 1)
	b.Jmp(comb)
	b.Bind(combDone)
	if st {
		b.SetArg(0, isa.R7)
		b.Call(stlib.ProcJCFinish)
	}
	b.RetVoid()
}

func fftSetup(w *Workload, n int64, seed uint64) {
	re := randFloats(n, seed)
	im := randFloats(n, seed+1)
	// Reference: naive DFT.
	wantRe := make([]float64, n)
	wantIm := make([]float64, n)
	for k := int64(0); k < n; k++ {
		for t := int64(0); t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			c, s := math.Cos(ang), math.Sin(ang)
			wantRe[k] += re[t]*c - im[t]*s
			wantIm[k] += re[t]*s + im[t]*c
		}
	}

	w.HeapWords = int(4*n) + 1<<10
	w.Setup = func(m *mem.Memory) ([]int64, error) {
		reB, err := m.Alloc(n)
		if err != nil {
			return nil, err
		}
		imB, _ := m.Alloc(n)
		t1, _ := m.Alloc(n)
		t2, err := m.Alloc(n)
		if err != nil {
			return nil, err
		}
		m.WriteFloats(reB, re)
		m.WriteFloats(imB, im)
		w.Verify = func(m *mem.Memory, _ int64) error {
			gr := m.ReadFloats(reB, n)
			gi := m.ReadFloats(imB, n)
			scale := math.Sqrt(float64(n))
			for i := range gr {
				if math.Abs(gr[i]-wantRe[i]) > 1e-6*scale || math.Abs(gi[i]-wantIm[i]) > 1e-6*scale {
					return fmt.Errorf("fft[%d] = (%g,%g), want (%g,%g)", i, gr[i], gi[i], wantRe[i], wantIm[i])
				}
			}
			return nil
		}
		return []int64{reB, imB, t1, t2, n}, nil
	}
}
