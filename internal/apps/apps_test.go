package apps_test

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
)

// build enumerates every benchmark at test-friendly sizes.
func testWorkloads(v apps.Variant) []*apps.Workload {
	return []*apps.Workload{
		apps.Fib(14, v),
		apps.PingPong(10, v),
		apps.Cilksort(300, v, 11),
		apps.Knapsack(16, 40, v, 5),
		apps.Notempmul(10, v, 21),
		apps.Blockedmul(10, v, 22),
		apps.Spacemul(10, v, 23),
		apps.Heat(10, 10, 4, v, 31),
		apps.LU(10, v, 32),
		apps.FFT(64, v, 33),
		apps.Magic(v, 34),
		apps.NQueens(6, v),
		apps.TreeAdd(6, v),
	}
}

// TestAllAppsSequential runs each Seq workload on the plain machine.
func TestAllAppsSequential(t *testing.T) {
	for _, w := range testWorkloads(apps.Seq) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			_, err := core.Run(w, core.Config{Mode: core.Sequential, CheckInvariants: true})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAllAppsST runs each ST workload across worker counts under the
// StackThreads runtime with the invariant checker on.
func TestAllAppsST(t *testing.T) {
	for _, n := range []int{1, 3, 8} {
		for _, w := range testWorkloads(apps.ST) {
			w, n := w, n
			t.Run(w.Name+"/workers="+string(rune('0'+n)), func(t *testing.T) {
				_, err := core.Run(w, core.Config{
					Mode: core.StackThreads, Workers: n,
					CheckInvariants: true, Seed: uint64(n),
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestAllAppsCilk runs each ST workload under the Cilk baseline.
func TestAllAppsCilk(t *testing.T) {
	for _, n := range []int{1, 4} {
		for _, w := range testWorkloads(apps.ST) {
			w, n := w, n
			t.Run(w.Name+"/workers="+string(rune('0'+n)), func(t *testing.T) {
				_, err := core.Run(w, core.Config{
					Mode: core.Cilk, Workers: n,
					CheckInvariants: true, Seed: uint64(n) + 7,
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestAllAppsSegmentedStacks runs every ST workload under the Section 5.1
// multi-stack scheme with invariants checked: results must be identical.
func TestAllAppsSegmentedStacks(t *testing.T) {
	ws := testWorkloads(apps.ST)
	ws = append(ws, apps.Staircase(12, 16))
	for _, w := range ws {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			_, err := core.Run(w, core.Config{
				Mode: core.StackThreads, Workers: 4,
				SegmentedStacks: true, CheckInvariants: true, Seed: 11,
				StackWords: 1 << 14, // small segments force switching
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}
