package apps

import (
	"fmt"
	"math"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/stlib"
)

// luChunkRows is the parallel grain of the trailing-matrix update.
const luChunkRows = 4

// LU environment block: env[0] matrix base, env[1] n.

// LU builds the lu benchmark: in-place LU decomposition without pivoting
// (Doolittle). For each pivot k the column scaling runs sequentially and
// the trailing-matrix row updates are forked in chunks and joined.
func LU(n int64, v Variant, seed uint64) *Workload {
	u := stUnit()
	addLUDiv(u)
	addLURows(u, v == ST)

	if v == Seq {
		m := u.Proc("lu_main", 1, 0)
		kLoop := m.NewLabel()
		rLoop := m.NewLabel()
		rDone := m.NewLabel()
		done := m.NewLabel()
		m.LoadArg(isa.R0, 0)      // env
		m.Load(isa.R1, isa.R0, 1) // n
		m.Const(isa.R2, 0)        // k
		m.Bind(kLoop)
		m.Bge(isa.R2, isa.R1, done)
		m.SetArg(0, isa.R0)
		m.SetArg(1, isa.R2)
		m.Call("lu_div")
		m.AddI(isa.R3, isa.R2, 1) // i0
		m.Bind(rLoop)
		m.Bge(isa.R3, isa.R1, rDone)
		m.SetArg(0, isa.R0)
		m.SetArg(1, isa.R2)
		m.SetArg(2, isa.R3)
		m.Const(isa.T0, luChunkRows)
		m.SetArg(3, isa.T0)
		m.Call("lu_rows")
		m.AddI(isa.R3, isa.R3, luChunkRows)
		m.Jmp(rLoop)
		m.Bind(rDone)
		m.AddI(isa.R2, isa.R2, 1)
		m.Jmp(kLoop)
		m.Bind(done)
		m.Const(isa.RV, 0)
		m.Ret(isa.RV)

		w := &Workload{Name: "lu", Variant: Seq, Procs: u.MustBuild(), Entry: "lu_main"}
		luSetup(w, n, seed)
		return w
	}

	// lu_update(env, k, i0, ni, jc): recursive bisection over the trailing
	// rows of pivot step k — a steal ships half the remaining range.
	c := u.Proc("lu_update", 5, stlib.JCWords+stlib.CtxWords)
	rec := c.NewLabel()
	c.LoadArg(isa.R0, 0)
	c.LoadArg(isa.R1, 1) // k
	c.LoadArg(isa.R2, 2) // i0
	c.LoadArg(isa.R3, 3) // ni
	c.LoadArg(isa.R4, 4) // parent jc
	c.BgtI(isa.R3, luChunkRows, rec)
	c.SetArg(0, isa.R0)
	c.SetArg(1, isa.R1)
	c.SetArg(2, isa.R2)
	c.SetArg(3, isa.R3)
	c.Call("lu_rows")
	stlib.JCFinishInline(c, isa.R4)
	c.RetVoid()
	c.Bind(rec)
	c.Const(isa.T0, 2)
	c.Div(isa.R5, isa.R3, isa.T0) // h
	c.LocalAddr(isa.R6, 0)
	stlib.JCInitInline(c, isa.R6, 2)
	c.SetArg(0, isa.R0)
	c.SetArg(1, isa.R1)
	c.SetArg(2, isa.R2)
	c.SetArg(3, isa.R5)
	c.SetArg(4, isa.R6)
	c.Fork("lu_update")
	c.Poll()
	c.SetArg(0, isa.R0)
	c.SetArg(1, isa.R1)
	c.Add(isa.T0, isa.R2, isa.R5)
	c.SetArg(2, isa.T0)
	c.Sub(isa.T1, isa.R3, isa.R5)
	c.SetArg(3, isa.T1)
	c.SetArg(4, isa.R6)
	c.Fork("lu_update")
	c.Poll()
	stlib.JCJoinInline(c, isa.R6, stlib.JCWords)
	stlib.JCFinishInline(c, isa.R4)
	c.RetVoid()

	m := u.Proc("lu_main", 1, stlib.JCWords)
	kLoop := m.NewLabel()
	skipPar := m.NewLabel()
	done := m.NewLabel()
	m.LoadArg(isa.R0, 0)
	m.Load(isa.R1, isa.R0, 1)
	m.Const(isa.R2, 0)
	m.LocalAddr(isa.R5, 0)
	m.Bind(kLoop)
	m.Bge(isa.R2, isa.R1, done)
	m.SetArg(0, isa.R0)
	m.SetArg(1, isa.R2)
	m.Call("lu_div")
	m.Sub(isa.R3, isa.R1, isa.R2)
	m.AddI(isa.R3, isa.R3, -1) // trailing rows
	m.BleI(isa.R3, 0, skipPar)
	// Near the end the trailing update is too small for distribution to
	// pay off; run it in place (standard grain control).
	seqTail := m.NewLabel()
	join := m.NewLabel()
	m.BgtI(isa.R3, 3*luChunkRows, seqTail)
	m.SetArg(0, isa.R0)
	m.SetArg(1, isa.R2)
	m.AddI(isa.T0, isa.R2, 1)
	m.SetArg(2, isa.T0)
	m.SetArg(3, isa.R3)
	m.Call("lu_rows")
	m.Jmp(skipPar)
	m.Bind(seqTail)
	stlib.JCInitInline(m, isa.R5, 1)
	m.SetArg(0, isa.R0)
	m.SetArg(1, isa.R2)
	m.AddI(isa.T0, isa.R2, 1)
	m.SetArg(2, isa.T0)
	m.SetArg(3, isa.R3)
	m.SetArg(4, isa.R5)
	m.Fork("lu_update")
	m.Poll()
	m.Bind(join)
	m.SetArg(0, isa.R5)
	m.Call(stlib.ProcJCJoin)
	m.Bind(skipPar)
	m.AddI(isa.R2, isa.R2, 1)
	m.Jmp(kLoop)
	m.Bind(done)
	m.Const(isa.RV, 0)
	m.Ret(isa.RV)

	stlib.AddBoot(u, "lu_main", 1)
	w := &Workload{Name: "lu", Variant: ST, Procs: u.MustBuild(), Entry: stlib.ProcBoot}
	luSetup(w, n, seed)
	return w
}

// addLUDiv emits lu_div(env, k): a[i][k] /= a[k][k] for i in (k, n).
func addLUDiv(u *asm.Unit) {
	b := u.Proc("lu_div", 2, 0)
	loop := b.NewLabel()
	done := b.NewLabel()
	b.LoadArg(isa.R0, 0)
	b.LoadArg(isa.R1, 1)      // k
	b.Load(isa.R2, isa.R0, 0) // a
	b.Load(isa.R3, isa.R0, 1) // n
	// pivot = a[k*n+k]
	b.Mul(isa.T0, isa.R1, isa.R3)
	b.Add(isa.T0, isa.T0, isa.R1)
	b.Add(isa.T0, isa.T0, isa.R2)
	b.Load(isa.R4, isa.T0, 0) // pivot bits
	b.AddI(isa.R5, isa.R1, 1) // i
	b.Bind(loop)
	b.Bge(isa.R5, isa.R3, done)
	b.Mul(isa.T0, isa.R5, isa.R3)
	b.Add(isa.T0, isa.T0, isa.R1)
	b.Add(isa.T0, isa.T0, isa.R2)
	b.Load(isa.T1, isa.T0, 0)
	b.FDiv(isa.T1, isa.T1, isa.R4)
	b.Store(isa.T0, 0, isa.T1)
	b.AddI(isa.R5, isa.R5, 1)
	b.Jmp(loop)
	b.Bind(done)
	b.RetVoid()
}

// addLURows emits lu_rows(env, k, i0, ni): the trailing update
// a[i][j] -= a[i][k]·a[k][j] for i in [i0, min(i0+ni, n)), j in (k, n).
func addLURows(u *asm.Unit, poll bool) {
	b := u.Proc("lu_rows", 4, 0)
	iLoop := b.NewLabel()
	jLoop := b.NewLabel()
	jDone := b.NewLabel()
	iDone := b.NewLabel()

	b.LoadArg(isa.R0, 0)
	b.LoadArg(isa.R1, 1) // k
	b.LoadArg(isa.R2, 2) // i
	b.LoadArg(isa.R3, 3) // ni
	b.Load(isa.R4, isa.R0, 0)
	b.Load(isa.R5, isa.R0, 1)
	b.Add(isa.R3, isa.R2, isa.R3) // iEnd

	b.Bind(iLoop)
	b.Bge(isa.R2, isa.R3, iDone)
	b.Bge(isa.R2, isa.R5, iDone)
	if poll {
		b.Poll()
	}
	// lik = a[i*n+k]
	b.Mul(isa.R6, isa.R2, isa.R5)
	b.Add(isa.T0, isa.R6, isa.R1)
	b.Add(isa.T0, isa.T0, isa.R4)
	b.Load(isa.R7, isa.T0, 0)
	// cursors: a[i*n + j], a[k*n + j] for j = k+1
	b.Add(isa.T0, isa.R6, isa.R4)
	b.Add(isa.T0, isa.T0, isa.R1)
	b.AddI(isa.T0, isa.T0, 1) // &a[i][k+1]
	b.Mul(isa.T1, isa.R1, isa.R5)
	b.Add(isa.T1, isa.T1, isa.R4)
	b.Add(isa.T1, isa.T1, isa.R1)
	b.AddI(isa.T1, isa.T1, 1) // &a[k][k+1]
	b.AddI(isa.T6, isa.R1, 1) // j

	b.Bind(jLoop)
	b.Bge(isa.T6, isa.R5, jDone)
	b.Load(isa.T2, isa.T1, 0)
	b.FMul(isa.T2, isa.R7, isa.T2)
	b.Load(isa.T3, isa.T0, 0)
	b.FSub(isa.T3, isa.T3, isa.T2)
	b.Store(isa.T0, 0, isa.T3)
	b.AddI(isa.T0, isa.T0, 1)
	b.AddI(isa.T1, isa.T1, 1)
	b.AddI(isa.T6, isa.T6, 1)
	b.Jmp(jLoop)

	b.Bind(jDone)
	b.AddI(isa.R2, isa.R2, 1)
	b.Jmp(iLoop)

	b.Bind(iDone)
	b.RetVoid()
}

func luSetup(w *Workload, n int64, seed uint64) {
	// Diagonally dominant input keeps the factorization stable without
	// pivoting.
	a := randFloats(n*n, seed)
	for i := int64(0); i < n; i++ {
		a[i*n+i] += float64(n)
	}
	want := append([]float64(nil), a...)
	for k := int64(0); k < n; k++ {
		for i := k + 1; i < n; i++ {
			want[i*n+k] /= want[k*n+k]
		}
		for i := k + 1; i < n; i++ {
			lik := want[i*n+k]
			for j := k + 1; j < n; j++ {
				want[i*n+j] -= lik * want[k*n+j]
			}
		}
	}

	w.HeapWords = int(n*n) + 1<<10
	w.Setup = func(m *mem.Memory) ([]int64, error) {
		aBase, err := m.Alloc(n * n)
		if err != nil {
			return nil, err
		}
		env, err := m.Alloc(2)
		if err != nil {
			return nil, err
		}
		m.WriteFloats(aBase, a)
		m.WriteWords(env, []int64{aBase, n})
		w.Verify = func(m *mem.Memory, _ int64) error {
			got := m.ReadFloats(aBase, n*n)
			for i := range got {
				if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
					return fmt.Errorf("lu[%d] = %g, want %g", i, got[i], want[i])
				}
			}
			return nil
		}
		return []int64{env}, nil
	}
}
