// Package apps contains the benchmark programs of the paper's evaluation
// (Section 8.2), written in the assembler DSL: the Cilk distribution
// benchmarks ported to StackThreads (cilksort, notempmul, knapsack, fib,
// heat, lu, fft, spacemul, blockedmul, magic) plus small kernels used by
// tests. Every workload comes in two variants:
//
//   - Seq: the sequential elision — forks become plain calls and
//     synchronization disappears. This is the "C" baseline of Figure 21.
//   - ST: the StackThreads version — ASYNC_CALL forks, join counters, and
//     poll points inserted per Feeley's method (at thread-creation
//     boundaries).
//
// The Cilk baseline runs the ST code under the Cilk cost/scheduling mode of
// the runtime (see DESIGN.md for the substitution argument).
package apps

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/postproc"
	"repro/internal/stlib"
)

// Variant selects the compilation/runtime flavor of a workload.
type Variant int

// Workload variants.
const (
	// Seq is the sequential elision compiled without postprocessing.
	Seq Variant = iota
	// ST is the StackThreads version: postprocessed, forked, joined.
	ST
)

func (v Variant) String() string {
	switch v {
	case Seq:
		return "seq"
	case ST:
		return "st"
	}
	return fmt.Sprintf("variant(%d)", int(v))
}

// Workload is one runnable benchmark instance: compiled procedures, the
// entry point, heap demand, input setup, and output verification.
type Workload struct {
	Name    string
	Variant Variant
	Procs   []*isa.Proc
	// Units optionally partitions Procs into compilation units for the
	// postprocessor's per-unit augmentation criteria (nil: one unit).
	Units [][]*isa.Proc
	// Entry is the procedure the harness starts (the boot shim for ST).
	Entry string
	// Args are the entry's arguments; Setup may extend or replace them.
	Args []int64
	// HeapWords is the shared-heap demand of Setup plus the program.
	HeapWords int
	// Setup populates simulated memory and returns the entry arguments. A
	// nil Setup means Args is final.
	Setup func(m *mem.Memory) ([]int64, error)
	// Verify checks the run's output given the final memory and the
	// program's return value. A nil Verify accepts anything.
	Verify func(m *mem.Memory, rv int64) error
}

// Compile postprocesses and links the workload with settings appropriate to
// its variant: the ST variant is always augmented, the sequential elision
// never (it is plain compiler output, like the paper's C baselines).
func (w *Workload) Compile() (*isa.Program, error) {
	opt := postproc.Options{Augment: w.Variant == ST}
	if w.Units != nil {
		return postproc.CompileUnits(w.Units, opt)
	}
	return postproc.Compile(w.Procs, opt)
}

// MustCompile is Compile panicking on error (host programming bugs).
func (w *Workload) MustCompile() *isa.Program {
	p, err := w.Compile()
	if err != nil {
		panic(err)
	}
	return p
}

// stUnit creates a unit pre-populated with the join library and returns it.
func stUnit() *asm.Unit {
	u := asm.NewUnit()
	stlib.AddJoinLib(u)
	return u
}

// finishST makes a Workload for an ST-variant unit whose top procedure is
// main(argc args): it adds the boot shim and builds.
func finishST(u *asm.Unit, name, mainProc string, argc int, args []int64) *Workload {
	stlib.AddBoot(u, mainProc, argc)
	return &Workload{
		Name:    name,
		Variant: ST,
		Procs:   u.MustBuild(),
		Entry:   stlib.ProcBoot,
		Args:    args,
	}
}
