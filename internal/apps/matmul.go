package apps

import (
	"fmt"
	"math"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/stlib"
)

// Matrix environment block layout shared by the three multiply benchmarks:
//
//	env[0] A base   env[1] B base   env[2] C base   env[3] n
//
// Matrices are dense row-major float64 (stored as raw bits).

// matmulRowCut is the row grain of the recursive variants.
const matmulRowCut = 2

// matmulSetup builds Setup/Verify closures for an n×n multiply.
func matmulSetup(w *Workload, n int64, seed uint64, extraHeap int64) {
	a := randFloats(n*n, seed)
	bm := randFloats(n*n, seed+1)
	want := make([]float64, n*n)
	for i := int64(0); i < n; i++ {
		for k := int64(0); k < n; k++ {
			aik := a[i*n+k]
			for j := int64(0); j < n; j++ {
				want[i*n+j] += aik * bm[k*n+j]
			}
		}
	}
	w.HeapWords = int(3*n*n+extraHeap) + 1<<12
	w.Setup = func(m *mem.Memory) ([]int64, error) {
		aBase, err := m.Alloc(n * n)
		if err != nil {
			return nil, err
		}
		bBase, _ := m.Alloc(n * n)
		cBase, _ := m.Alloc(n * n)
		env, err := m.Alloc(4)
		if err != nil {
			return nil, err
		}
		m.WriteFloats(aBase, a)
		m.WriteFloats(bBase, bm)
		m.WriteWords(env, []int64{aBase, bBase, cBase, n})
		w.Verify = func(m *mem.Memory, _ int64) error {
			got := m.ReadFloats(cBase, n*n)
			for i := range got {
				if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
					return fmt.Errorf("C[%d] = %g, want %g", i, got[i], want[i])
				}
			}
			return nil
		}
		return []int64{env}, nil
	}
}

func randFloats(n int64, seed uint64) []float64 {
	x := seed*2862933555777941757 + 3037000493
	out := make([]float64, n)
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = float64(x%1000)/1000.0 - 0.5
	}
	return out
}

// addRowKernel emits mm_rows(env, cBase, aBase, r0, nr): the sequential
// kernel computing rows [r0, r0+nr) of C += A×B with the (i,k,j) loop
// order. cBase/aBase are passed explicitly so the recursive variants can
// retarget output rows (spacemul writes temporaries).
//
// ST builds poll on the row-loop back-edge (Feeley's polling method bounds
// the instructions between polls; a chunk of rows is far too long a gap).
func addRowKernel(u *asm.Unit, poll bool) {
	b := u.Proc("mm_rows", 5, 0)
	iLoop := b.NewLabel()
	kLoop := b.NewLabel()
	jLoop := b.NewLabel()
	jDone := b.NewLabel()
	kDone := b.NewLabel()
	iDone := b.NewLabel()

	b.LoadArg(isa.R0, 0)      // env
	b.LoadArg(isa.R1, 1)      // C base (already offset to row r0)
	b.LoadArg(isa.R2, 2)      // A base (already offset to row r0)
	b.LoadArg(isa.R4, 4)      // nr
	b.Load(isa.R5, isa.R0, 1) // B base
	b.Load(isa.R6, isa.R0, 3) // n
	b.Const(isa.R7, 0)        // i (row within the chunk)

	b.Bind(iLoop)
	b.Bge(isa.R7, isa.R4, iDone)
	b.Const(isa.T4, 0) // k

	b.Bind(kLoop)
	b.Bge(isa.T4, isa.R6, kDone)
	if poll {
		// k-loop back-edge: bounds the poll gap at one j-row of work
		// (Feeley's method strip-mines polls to a few hundred instructions).
		b.Poll()
	}
	// aik = A[i*n + k]
	b.Mul(isa.T0, isa.R7, isa.R6)
	b.Add(isa.T0, isa.T0, isa.T4)
	b.Add(isa.T0, isa.T0, isa.R2)
	b.Load(isa.T5, isa.T0, 0) // aik bits
	// row pointers: Crow = C + i*n, Brow = B + k*n
	b.Mul(isa.T0, isa.R7, isa.R6)
	b.Add(isa.T0, isa.T0, isa.R1) // C row cursor
	b.Mul(isa.T1, isa.T4, isa.R6)
	b.Add(isa.T1, isa.T1, isa.R5) // B row cursor
	b.Const(isa.T6, 0)            // j

	b.Bind(jLoop)
	b.Bge(isa.T6, isa.R6, jDone)
	b.Load(isa.T2, isa.T1, 0)
	b.FMul(isa.T2, isa.T5, isa.T2)
	b.Load(isa.T3, isa.T0, 0)
	b.FAdd(isa.T3, isa.T3, isa.T2)
	b.Store(isa.T0, 0, isa.T3)
	b.AddI(isa.T0, isa.T0, 1)
	b.AddI(isa.T1, isa.T1, 1)
	b.AddI(isa.T6, isa.T6, 1)
	b.Jmp(jLoop)

	b.Bind(jDone)
	b.AddI(isa.T4, isa.T4, 1)
	b.Jmp(kLoop)

	b.Bind(kDone)
	b.AddI(isa.R7, isa.R7, 1)
	b.Jmp(iLoop)

	b.Bind(iDone)
	b.RetVoid()
}

// Notempmul builds the no-temporaries matrix multiply: recursive split over
// output rows, both halves forked; no intermediate storage is allocated.
func Notempmul(n int64, v Variant, seed uint64) *Workload {
	u := stUnit()
	addRowKernel(u, v == ST)

	if v == Seq {
		b := u.Proc("ntm", 5, 0)
		rec := b.NewLabel()
		b.LoadArg(isa.R0, 0) // env
		b.LoadArg(isa.R1, 1) // c
		b.LoadArg(isa.R2, 2) // a
		b.LoadArg(isa.R3, 3) // r0
		b.LoadArg(isa.R4, 4) // nr
		b.BgtI(isa.R4, matmulRowCut, rec)
		b.SetArg(0, isa.R0)
		b.SetArg(1, isa.R1)
		b.SetArg(2, isa.R2)
		b.SetArg(3, isa.R3)
		b.SetArg(4, isa.R4)
		b.Call("mm_rows")
		b.RetVoid()
		b.Bind(rec)
		b.Const(isa.T0, 2)
		b.Div(isa.R5, isa.R4, isa.T0) // h
		b.Load(isa.R6, isa.R0, 3)     // n
		b.Mul(isa.R7, isa.R5, isa.R6) // h*n
		b.SetArg(0, isa.R0)
		b.SetArg(1, isa.R1)
		b.SetArg(2, isa.R2)
		b.SetArg(3, isa.R3)
		b.SetArg(4, isa.R5)
		b.Call("ntm")
		b.SetArg(0, isa.R0)
		b.Add(isa.T0, isa.R1, isa.R7)
		b.SetArg(1, isa.T0)
		b.Add(isa.T0, isa.R2, isa.R7)
		b.SetArg(2, isa.T0)
		b.Add(isa.T0, isa.R3, isa.R5)
		b.SetArg(3, isa.T0)
		b.Sub(isa.T1, isa.R4, isa.R5)
		b.SetArg(4, isa.T1)
		b.Call("ntm")
		b.RetVoid()

		m := u.Proc("ntm_main", 1, 0)
		b = m
		b.LoadArg(isa.R0, 0)
		b.SetArg(0, isa.R0)
		b.Load(isa.T0, isa.R0, 2)
		b.SetArg(1, isa.T0)
		b.Load(isa.T0, isa.R0, 0)
		b.SetArg(2, isa.T0)
		b.Const(isa.T0, 0)
		b.SetArg(3, isa.T0)
		b.Load(isa.T0, isa.R0, 3)
		b.SetArg(4, isa.T0)
		b.Call("ntm")
		b.Const(isa.RV, 0)
		b.Ret(isa.RV)

		w := &Workload{Name: "notempmul", Variant: Seq, Procs: u.MustBuild(), Entry: "ntm_main"}
		matmulSetup(w, n, seed, 0)
		return w
	}

	b := u.Proc("ntm", 6, stlib.JCWords)
	rec := b.NewLabel()
	b.LoadArg(isa.R0, 0)
	b.LoadArg(isa.R1, 1)
	b.LoadArg(isa.R2, 2)
	b.LoadArg(isa.R3, 3)
	b.LoadArg(isa.R4, 4)
	b.LoadArg(isa.R7, 5) // parent jc
	b.BgtI(isa.R4, matmulRowCut, rec)
	b.SetArg(0, isa.R0)
	b.SetArg(1, isa.R1)
	b.SetArg(2, isa.R2)
	b.SetArg(3, isa.R3)
	b.SetArg(4, isa.R4)
	b.Call("mm_rows")
	b.SetArg(0, isa.R7)
	b.Call(stlib.ProcJCFinish)
	b.RetVoid()
	b.Bind(rec)
	b.Const(isa.T0, 2)
	b.Div(isa.R5, isa.R4, isa.T0)
	b.Load(isa.T0, isa.R0, 3)
	b.Mul(isa.R6, isa.R5, isa.T0) // h*n
	b.LocalAddr(isa.T1, 0)
	b.SetArg(0, isa.T1)
	b.Const(isa.T0, 2)
	b.SetArg(1, isa.T0)
	b.Call(stlib.ProcJCInit)
	b.SetArg(0, isa.R0)
	b.SetArg(1, isa.R1)
	b.SetArg(2, isa.R2)
	b.SetArg(3, isa.R3)
	b.SetArg(4, isa.R5)
	b.LocalAddr(isa.T1, 0)
	b.SetArg(5, isa.T1)
	b.Fork("ntm")
	b.Poll()
	b.SetArg(0, isa.R0)
	b.Add(isa.T0, isa.R1, isa.R6)
	b.SetArg(1, isa.T0)
	b.Add(isa.T0, isa.R2, isa.R6)
	b.SetArg(2, isa.T0)
	b.Add(isa.T0, isa.R3, isa.R5)
	b.SetArg(3, isa.T0)
	b.Sub(isa.T1, isa.R4, isa.R5)
	b.SetArg(4, isa.T1)
	b.LocalAddr(isa.T1, 0)
	b.SetArg(5, isa.T1)
	b.Fork("ntm")
	b.Poll()
	b.LocalAddr(isa.T1, 0)
	b.SetArg(0, isa.T1)
	b.Call(stlib.ProcJCJoin)
	b.SetArg(0, isa.R7)
	b.Call(stlib.ProcJCFinish)
	b.RetVoid()

	m := u.Proc("ntm_main", 1, stlib.JCWords)
	m.LoadArg(isa.R0, 0)
	m.LocalAddr(isa.R1, 0)
	m.SetArg(0, isa.R1)
	m.Const(isa.T0, 1)
	m.SetArg(1, isa.T0)
	m.Call(stlib.ProcJCInit)
	m.SetArg(0, isa.R0)
	m.Load(isa.T0, isa.R0, 2)
	m.SetArg(1, isa.T0)
	m.Load(isa.T0, isa.R0, 0)
	m.SetArg(2, isa.T0)
	m.Const(isa.T0, 0)
	m.SetArg(3, isa.T0)
	m.Load(isa.T0, isa.R0, 3)
	m.SetArg(4, isa.T0)
	m.SetArg(5, isa.R1)
	m.Fork("ntm")
	m.Poll()
	m.SetArg(0, isa.R1)
	m.Call(stlib.ProcJCJoin)
	m.Const(isa.RV, 0)
	m.Ret(isa.RV)

	stlib.AddBoot(u, "ntm_main", 1)
	w := &Workload{Name: "notempmul", Variant: ST, Procs: u.MustBuild(), Entry: stlib.ProcBoot}
	matmulSetup(w, n, seed, 0)
	return w
}

// blockedmulBS is the row-block size of the blocked multiply.
const blockedmulBS = 2

// Blockedmul builds the loop-blocked multiply: the main procedure forks one
// thread per block of rows (flat parallelism, a single join counter).
func Blockedmul(n int64, v Variant, seed uint64) *Workload {
	u := stUnit()
	addRowKernel(u, v == ST)

	if v == Seq {
		m := u.Proc("bmm_main", 1, 0)
		loop := m.NewLabel()
		done := m.NewLabel()
		m.LoadArg(isa.R0, 0)      // env
		m.Load(isa.R1, isa.R0, 3) // n
		m.Const(isa.R2, 0)        // r0
		small := m.NewLabel()
		m.Bind(loop)
		m.Bge(isa.R2, isa.R1, done)
		// nr = min(BS, n-r0)
		m.Sub(isa.R3, isa.R1, isa.R2)
		m.BleI(isa.R3, blockedmulBS, small)
		m.Const(isa.R3, blockedmulBS)
		m.Bind(small)
		m.SetArg(0, isa.R0)
		m.Load(isa.T0, isa.R0, 2)
		m.Mul(isa.T1, isa.R2, isa.R1)
		m.Add(isa.T0, isa.T0, isa.T1)
		m.SetArg(1, isa.T0) // C + r0*n
		m.Load(isa.T0, isa.R0, 0)
		m.Add(isa.T0, isa.T0, isa.T1)
		m.SetArg(2, isa.T0) // A + r0*n
		m.SetArg(3, isa.R2)
		m.SetArg(4, isa.R3)
		m.Call("mm_rows")
		m.Add(isa.R2, isa.R2, isa.R3)
		m.Jmp(loop)
		m.Bind(done)
		m.Const(isa.RV, 0)
		m.Ret(isa.RV)

		w := &Workload{Name: "blockedmul", Variant: Seq, Procs: u.MustBuild(), Entry: "bmm_main"}
		matmulSetup(w, n, seed, 0)
		return w
	}

	// bmm_block(env, c, a, r0, nr, jc): kernel + finish.
	blk := u.Proc("bmm_block", 6, 0)
	blk.LoadArg(isa.R0, 5)
	blk.LoadArg(isa.T0, 0)
	blk.SetArg(0, isa.T0)
	blk.LoadArg(isa.T0, 1)
	blk.SetArg(1, isa.T0)
	blk.LoadArg(isa.T0, 2)
	blk.SetArg(2, isa.T0)
	blk.LoadArg(isa.T0, 3)
	blk.SetArg(3, isa.T0)
	blk.LoadArg(isa.T0, 4)
	blk.SetArg(4, isa.T0)
	blk.Call("mm_rows")
	blk.SetArg(0, isa.R0)
	blk.Call(stlib.ProcJCFinish)
	blk.RetVoid()

	m := u.Proc("bmm_main", 1, stlib.JCWords)
	loop := m.NewLabel()
	done := m.NewLabel()
	m.LoadArg(isa.R0, 0)      // env
	m.Load(isa.R1, isa.R0, 3) // n
	// nblocks = ceil(n / BS)
	m.AddI(isa.T0, isa.R1, blockedmulBS-1)
	m.Const(isa.T1, blockedmulBS)
	m.Div(isa.R4, isa.T0, isa.T1)
	m.LocalAddr(isa.R5, 0)
	m.SetArg(0, isa.R5)
	m.SetArg(1, isa.R4)
	m.Call(stlib.ProcJCInit)
	m.Const(isa.R2, 0) // r0
	small := m.NewLabel()
	m.Bind(loop)
	m.Bge(isa.R2, isa.R1, done)
	m.Sub(isa.R3, isa.R1, isa.R2)
	m.BleI(isa.R3, blockedmulBS, small)
	m.Const(isa.R3, blockedmulBS)
	m.Bind(small)
	m.SetArg(0, isa.R0)
	m.Load(isa.T0, isa.R0, 2)
	m.Mul(isa.T1, isa.R2, isa.R1)
	m.Add(isa.T0, isa.T0, isa.T1)
	m.SetArg(1, isa.T0)
	m.Load(isa.T0, isa.R0, 0)
	m.Add(isa.T0, isa.T0, isa.T1)
	m.SetArg(2, isa.T0)
	m.SetArg(3, isa.R2)
	m.SetArg(4, isa.R3)
	m.SetArg(5, isa.R5)
	m.Fork("bmm_block")
	m.Poll()
	m.Add(isa.R2, isa.R2, isa.R3)
	m.Jmp(loop)
	m.Bind(done)
	m.SetArg(0, isa.R5)
	m.Call(stlib.ProcJCJoin)
	m.Const(isa.RV, 0)
	m.Ret(isa.RV)

	stlib.AddBoot(u, "bmm_main", 1)
	w := &Workload{Name: "blockedmul", Variant: ST, Procs: u.MustBuild(), Entry: stlib.ProcBoot}
	matmulSetup(w, n, seed, 0)
	return w
}

// spacemulKCut is the inner-dimension grain of spacemul.
const spacemulKCut = 4

// addKSliceKernel emits mm_kslice(env, cBase, kLo, kN): the sequential
// kernel accumulating C += A[:, kLo:kLo+kN] × B[kLo:kLo+kN, :].
func addKSliceKernel(u *asm.Unit, poll bool) {
	b := u.Proc("mm_kslice", 4, 0)
	iLoop := b.NewLabel()
	kLoop := b.NewLabel()
	jLoop := b.NewLabel()
	jDone := b.NewLabel()
	kDone := b.NewLabel()
	iDone := b.NewLabel()

	b.LoadArg(isa.R0, 0)          // env
	b.LoadArg(isa.R1, 1)          // C base
	b.LoadArg(isa.R2, 2)          // kLo
	b.LoadArg(isa.R3, 3)          // kN
	b.Load(isa.R4, isa.R0, 0)     // A base
	b.Load(isa.R5, isa.R0, 1)     // B base
	b.Load(isa.R6, isa.R0, 3)     // n
	b.Const(isa.R7, 0)            // i
	b.Add(isa.R3, isa.R2, isa.R3) // kHi = kLo + kN

	b.Bind(iLoop)
	b.Bge(isa.R7, isa.R6, iDone)
	b.Mov(isa.T4, isa.R2) // k = kLo

	b.Bind(kLoop)
	b.Bge(isa.T4, isa.R3, kDone)
	if poll {
		b.Poll()
	}
	b.Mul(isa.T0, isa.R7, isa.R6)
	b.Add(isa.T0, isa.T0, isa.T4)
	b.Add(isa.T0, isa.T0, isa.R4)
	b.Load(isa.T5, isa.T0, 0) // aik
	b.Mul(isa.T0, isa.R7, isa.R6)
	b.Add(isa.T0, isa.T0, isa.R1) // C row cursor
	b.Mul(isa.T1, isa.T4, isa.R6)
	b.Add(isa.T1, isa.T1, isa.R5) // B row cursor
	b.Const(isa.T6, 0)            // j

	b.Bind(jLoop)
	b.Bge(isa.T6, isa.R6, jDone)
	b.Load(isa.T2, isa.T1, 0)
	b.FMul(isa.T2, isa.T5, isa.T2)
	b.Load(isa.T3, isa.T0, 0)
	b.FAdd(isa.T3, isa.T3, isa.T2)
	b.Store(isa.T0, 0, isa.T3)
	b.AddI(isa.T0, isa.T0, 1)
	b.AddI(isa.T1, isa.T1, 1)
	b.AddI(isa.T6, isa.T6, 1)
	b.Jmp(jLoop)

	b.Bind(jDone)
	b.AddI(isa.T4, isa.T4, 1)
	b.Jmp(kLoop)

	b.Bind(kDone)
	b.AddI(isa.R7, isa.R7, 1)
	b.Jmp(iLoop)

	b.Bind(iDone)
	b.RetVoid()
}

// addMatAdd emits mat_add(c, t, len): C += T elementwise.
func addMatAdd(u *asm.Unit) {
	b := u.Proc("mat_add", 3, 0)
	loop := b.NewLabel()
	done := b.NewLabel()
	b.LoadArg(isa.R0, 0)
	b.LoadArg(isa.R1, 1)
	b.LoadArg(isa.R2, 2)
	b.Const(isa.R3, 0)
	b.Bind(loop)
	b.Bge(isa.R3, isa.R2, done)
	b.Load(isa.T0, isa.R0, 0)
	b.Load(isa.T1, isa.R1, 0)
	b.FAdd(isa.T0, isa.T0, isa.T1)
	b.Store(isa.R0, 0, isa.T0)
	b.AddI(isa.R0, isa.R0, 1)
	b.AddI(isa.R1, isa.R1, 1)
	b.AddI(isa.R3, isa.R3, 1)
	b.Jmp(loop)
	b.Bind(done)
	b.RetVoid()
}

// Spacemul builds the temporary-allocating multiply: recursion over the
// inner dimension, with the upper half computed into a freshly allocated
// zeroed temporary matrix that is added back after the join. It stresses
// allocation exactly where notempmul avoids it.
func Spacemul(n int64, v Variant, seed uint64) *Workload {
	u := stUnit()
	addKSliceKernel(u, v == ST)
	addMatAdd(u)

	if v == Seq {
		// smm(env, c, kLo, kN)
		b := u.Proc("smm", 4, 0)
		rec := b.NewLabel()
		b.LoadArg(isa.R0, 0)
		b.LoadArg(isa.R1, 1)
		b.LoadArg(isa.R2, 2)
		b.LoadArg(isa.R3, 3)
		b.BgtI(isa.R3, spacemulKCut, rec)
		b.SetArg(0, isa.R0)
		b.SetArg(1, isa.R1)
		b.SetArg(2, isa.R2)
		b.SetArg(3, isa.R3)
		b.Call("mm_kslice")
		b.RetVoid()
		b.Bind(rec)
		b.Const(isa.T0, 2)
		b.Div(isa.R4, isa.R3, isa.T0) // h
		b.Load(isa.R6, isa.R0, 3)
		b.Mul(isa.R6, isa.R6, isa.R6) // n*n
		b.SetArg(0, isa.R6)
		b.Call("alloc")
		b.Mov(isa.R5, isa.RV) // temp
		b.SetArg(0, isa.R5)
		b.Const(isa.T0, 0)
		b.SetArg(1, isa.T0)
		b.SetArg(2, isa.R6)
		b.Call("memset")
		b.SetArg(0, isa.R0)
		b.SetArg(1, isa.R1)
		b.SetArg(2, isa.R2)
		b.SetArg(3, isa.R4)
		b.Call("smm")
		b.SetArg(0, isa.R0)
		b.SetArg(1, isa.R5)
		b.Add(isa.T0, isa.R2, isa.R4)
		b.SetArg(2, isa.T0)
		b.Sub(isa.T1, isa.R3, isa.R4)
		b.SetArg(3, isa.T1)
		b.Call("smm")
		b.SetArg(0, isa.R1)
		b.SetArg(1, isa.R5)
		b.SetArg(2, isa.R6)
		b.Call("mat_add")
		b.RetVoid()

		m := u.Proc("smm_main", 1, 0)
		m.LoadArg(isa.R0, 0)
		m.SetArg(0, isa.R0)
		m.Load(isa.T0, isa.R0, 2)
		m.SetArg(1, isa.T0)
		m.Const(isa.T0, 0)
		m.SetArg(2, isa.T0)
		m.Load(isa.T0, isa.R0, 3)
		m.SetArg(3, isa.T0)
		m.Call("smm")
		m.Const(isa.RV, 0)
		m.Ret(isa.RV)

		w := &Workload{Name: "spacemul", Variant: Seq, Procs: u.MustBuild(), Entry: "smm_main"}
		matmulSetup(w, n, seed, 4*n*n*int64(bitsLen(n)))
		return w
	}

	// smm(env, c, kLo, kN, jc)
	b := u.Proc("smm", 5, stlib.JCWords)
	rec := b.NewLabel()
	b.LoadArg(isa.R0, 0)
	b.LoadArg(isa.R1, 1)
	b.LoadArg(isa.R2, 2)
	b.LoadArg(isa.R3, 3)
	b.LoadArg(isa.R7, 4)
	b.BgtI(isa.R3, spacemulKCut, rec)
	b.SetArg(0, isa.R0)
	b.SetArg(1, isa.R1)
	b.SetArg(2, isa.R2)
	b.SetArg(3, isa.R3)
	b.Call("mm_kslice")
	b.SetArg(0, isa.R7)
	b.Call(stlib.ProcJCFinish)
	b.RetVoid()
	b.Bind(rec)
	b.Const(isa.T0, 2)
	b.Div(isa.R4, isa.R3, isa.T0)
	b.Load(isa.R6, isa.R0, 3)
	b.Mul(isa.R6, isa.R6, isa.R6)
	b.SetArg(0, isa.R6)
	b.Call("alloc")
	b.Mov(isa.R5, isa.RV)
	b.SetArg(0, isa.R5)
	b.Const(isa.T0, 0)
	b.SetArg(1, isa.T0)
	b.SetArg(2, isa.R6)
	b.Call("memset")
	b.LocalAddr(isa.T1, 0)
	b.SetArg(0, isa.T1)
	b.Const(isa.T0, 2)
	b.SetArg(1, isa.T0)
	b.Call(stlib.ProcJCInit)
	b.SetArg(0, isa.R0)
	b.SetArg(1, isa.R1)
	b.SetArg(2, isa.R2)
	b.SetArg(3, isa.R4)
	b.LocalAddr(isa.T1, 0)
	b.SetArg(4, isa.T1)
	b.Fork("smm")
	b.Poll()
	b.SetArg(0, isa.R0)
	b.SetArg(1, isa.R5)
	b.Add(isa.T0, isa.R2, isa.R4)
	b.SetArg(2, isa.T0)
	b.Sub(isa.T1, isa.R3, isa.R4)
	b.SetArg(3, isa.T1)
	b.LocalAddr(isa.T1, 0)
	b.SetArg(4, isa.T1)
	b.Fork("smm")
	b.Poll()
	b.LocalAddr(isa.T1, 0)
	b.SetArg(0, isa.T1)
	b.Call(stlib.ProcJCJoin)
	b.SetArg(0, isa.R1)
	b.SetArg(1, isa.R5)
	b.SetArg(2, isa.R6)
	b.Call("mat_add")
	b.SetArg(0, isa.R7)
	b.Call(stlib.ProcJCFinish)
	b.RetVoid()

	m := u.Proc("smm_main", 1, stlib.JCWords)
	m.LoadArg(isa.R0, 0)
	m.LocalAddr(isa.R1, 0)
	m.SetArg(0, isa.R1)
	m.Const(isa.T0, 1)
	m.SetArg(1, isa.T0)
	m.Call(stlib.ProcJCInit)
	m.SetArg(0, isa.R0)
	m.Load(isa.T0, isa.R0, 2)
	m.SetArg(1, isa.T0)
	m.Const(isa.T0, 0)
	m.SetArg(2, isa.T0)
	m.Load(isa.T0, isa.R0, 3)
	m.SetArg(3, isa.T0)
	m.SetArg(4, isa.R1)
	m.Fork("smm")
	m.Poll()
	m.SetArg(0, isa.R1)
	m.Call(stlib.ProcJCJoin)
	m.Const(isa.RV, 0)
	m.Ret(isa.RV)

	stlib.AddBoot(u, "smm_main", 1)
	w := &Workload{Name: "spacemul", Variant: ST, Procs: u.MustBuild(), Entry: stlib.ProcBoot}
	matmulSetup(w, n, seed, 4*n*n*int64(bitsLen(n)))
	return w
}

// bitsLen returns ceil(log2(n))+1, used to budget spacemul's temporaries.
func bitsLen(n int64) int {
	b := 1
	for n > 1 {
		n /= 2
		b++
	}
	return b
}
