package advprog

import (
	"errors"
	"testing"

	"repro/internal/apps"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/invariant"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/stlib"
)

// These are the harness's negative controls at the program level: actual
// attack programs — not state sabotage from a test hook — that clobber a
// live canary or leak a private word, proving each security rule fires
// with its own name on every engine.

// clobberWorkload builds the caller-integrity attack: the parent stamps a
// canary, hands its address to a forked child, and the child overwrites
// it — a cross-frame write into retained state.
func clobberWorkload() *apps.Workload {
	u := asm.NewUnit()
	stlib.AddJoinLib(u)

	c := u.Proc("atk_child", 2, 0)
	c.LoadArg(isa.R0, 0) // canary address in the parent's frame
	c.LoadArg(isa.R1, 1) // parent jc
	c.Const(isa.T0, 99)
	c.Store(isa.R0, 0, isa.T0) // the clobber
	stlib.JCFinishInline(c, isa.R1)
	c.RetVoid()

	const (
		locJC  = 0
		locCtx = stlib.JCWords
		locCan = stlib.JCWords + stlib.CtxWords
	)
	m := u.Proc("atk_main", 0, locCan+1)
	m.LocalAddr(isa.T1, locCan)
	m.Const(isa.T2, 12345)
	m.Const(isa.T3, 0)
	m.SetArg(0, isa.T1)
	m.SetArg(1, isa.T2)
	m.SetArg(2, isa.T3)
	m.Call("canary")
	m.LocalAddr(isa.R2, locJC)
	stlib.JCInitInline(m, isa.R2, 1)
	m.LocalAddr(isa.T1, locCan)
	m.SetArg(0, isa.T1)
	m.SetArg(1, isa.R2)
	m.Fork("atk_child")
	m.Poll()
	stlib.JCJoinInline(m, isa.R2, locCtx)
	m.LocalAddr(isa.T1, locCan)
	m.Const(isa.T2, 12345)
	m.SetArg(0, isa.T1)
	m.SetArg(1, isa.T2)
	m.Call("canary_retire")
	m.Const(isa.RV, 0)
	m.Ret(isa.RV)
	stlib.AddBoot(u, "atk_main", 0)

	return &apps.Workload{Name: "atk-clobber", Variant: apps.ST, Procs: u.MustBuild(),
		Entry: stlib.ProcBoot, HeapWords: 1 << 8}
}

// leakWorkload builds the frame-confidentiality attack: a frame stamps a
// private canary and returns without retiring it, leaving an unpublished
// word live in space the runtime hands out as free.
func leakWorkload() *apps.Workload {
	u := asm.NewUnit()
	stlib.AddJoinLib(u)

	m := u.Proc("leak_main", 0, 1)
	m.LocalAddr(isa.T1, 0)
	m.Const(isa.T2, 4242)
	m.Const(isa.T3, 1) // private
	m.SetArg(0, isa.T1)
	m.SetArg(1, isa.T2)
	m.SetArg(2, isa.T3)
	m.Call("canary")
	m.Const(isa.RV, 7)
	m.Ret(isa.RV) // no retire: the word leaks past the frame's lifetime
	stlib.AddBoot(u, "leak_main", 0)

	return &apps.Workload{Name: "atk-leak", Variant: apps.ST, Procs: u.MustBuild(),
		Entry: stlib.ProcBoot, HeapWords: 1 << 8}
}

func runAttack(t *testing.T, w *apps.Workload, engine core.Engine) error {
	t.Helper()
	_, err := core.Run(w, core.Config{
		Mode: core.StackThreads, Workers: 2, Engine: engine, Seed: 1,
		Audit: invariant.New(1), Canary: machine.NewCanaryMap(),
	})
	return err
}

func wantRule(t *testing.T, err error, engine core.Engine, rule string) {
	t.Helper()
	var v *invariant.Violation
	if !errors.As(err, &v) {
		t.Fatalf("engine=%v: attack not caught as a typed violation: %v", engine, err)
	}
	if v.Rule != rule {
		t.Fatalf("engine=%v: rule %q, want %q: %v", engine, v.Rule, rule, v)
	}
	if v.Dump == "" {
		t.Fatalf("engine=%v: violation carries no machine-state dump", engine)
	}
}

// TestAttackClobberCanary: the cross-frame write must abort the run with
// a caller-integrity violation on all three engines.
func TestAttackClobberCanary(t *testing.T) {
	for _, engine := range AllEngines() {
		wantRule(t, runAttack(t, clobberWorkload(), engine), engine, "caller-integrity")
	}
}

// TestAttackLeakPrivateCanary: the leaked private word sits below the
// stack top once its frame retires — the final audit must flag
// frame-confidentiality on all three engines.
func TestAttackLeakPrivateCanary(t *testing.T) {
	for _, engine := range AllEngines() {
		wantRule(t, runAttack(t, leakWorkload(), engine), engine, "frame-confidentiality")
	}
}
