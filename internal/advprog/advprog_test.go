package advprog

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/invariant"
	"repro/internal/machine"
)

// TestFromSeedDeterministic: equal (seed, classes) inputs must reproduce
// the identical program — a failing fuzz input is two numbers.
func TestFromSeedDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		a := FromSeed(seed, AllClasses)
		b := FromSeed(seed, AllClasses)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
}

// TestDeepNestDepth: the DeepNest class must emit fork chains of at least
// MinNestDepth levels.
func TestDeepNestDepth(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		p := FromSeed(seed, DeepNest)
		if p.NestDepth < MinNestDepth {
			t.Fatalf("seed %d: nest depth %d < %d", seed, p.NestDepth, MinNestDepth)
		}
	}
}

// TestClassSelection: a single-class request must not leak other classes'
// constructs into the tree.
func TestClassSelection(t *testing.T) {
	p := FromSeed(3, DeepNest)
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Edge != -1 || n.Probe || n.Race {
			t.Fatalf("node %d carries argsedge/probe/race constructs under DeepNest only", n.ID)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(p.Root)
}

// TestParseClasses covers the CLI surface.
func TestParseClasses(t *testing.T) {
	cases := []struct {
		in   string
		want Class
		err  bool
	}{
		{"all", AllClasses, false},
		{"", AllClasses, false},
		{"deepnest", DeepNest, false},
		{"deepnest,blockstorm", DeepNest | BlockStorm, false},
		{"argsedge, epiloguerace", ArgsEdge | EpilogueRace, false},
		{"31", AllClasses, false},
		{"bogus", 0, true},
	}
	for _, c := range cases {
		got, err := ParseClasses(c.in)
		if c.err != (err != nil) {
			t.Fatalf("ParseClasses(%q): err=%v, want err=%v", c.in, err, c.err)
		}
		if err == nil && got != c.want {
			t.Fatalf("ParseClasses(%q)=%v, want %v", c.in, got, c.want)
		}
	}
}

// TestVerifyCleanSeeds: a few adversarial programs across every engine,
// auditor at cadence 1, canaries armed — the harness's basic positive
// property (no hostile-but-well-formed program breaks the discipline).
func TestVerifyCleanSeeds(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		if err := Verify(FromSeed(seed, AllClasses), VerifyOpts{}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestVerifyUnderFaults: the same property with the adversarial fault
// preset injected.
func TestVerifyUnderFaults(t *testing.T) {
	if err := Verify(FromSeed(7, AllClasses), VerifyOpts{Plan: "adversarial"}); err != nil {
		t.Fatal(err)
	}
}

// TestCanaryAccounting: every stamped canary must be retired by the
// program itself — the map drains to zero with registered == retired.
func TestCanaryAccounting(t *testing.T) {
	p := FromSeed(11, AllClasses)
	cm := machine.NewCanaryMap()
	res, err := core.Run(Workload(p), core.Config{
		Mode: core.StackThreads, Workers: 4, Engine: core.EngineSequential,
		Seed: p.Seed, Audit: invariant.New(1), Canary: cm,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RV != p.Expected() {
		t.Fatalf("rv=%d want %d", res.RV, p.Expected())
	}
	if cm.Registered == 0 {
		t.Fatal("program stamped no canaries")
	}
	if cm.LiveCount() != 0 || cm.Registered != cm.Retired {
		t.Fatalf("canaries leaked: live=%d registered=%d retired=%d",
			cm.LiveCount(), cm.Registered, cm.Retired)
	}
	if cm.Clobbered != 0 {
		t.Fatalf("clean run recorded %d clobbers", cm.Clobbered)
	}
}

// TestCanaryDisarmed: without a canary map the canary builtins are plain
// stores — the program still runs and verifies.
func TestCanaryDisarmed(t *testing.T) {
	p := FromSeed(2, AllClasses)
	res, err := core.Run(Workload(p), core.Config{
		Mode: core.StackThreads, Workers: 4, Engine: core.EngineSequential, Seed: p.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RV != p.Expected() {
		t.Fatalf("rv=%d want %d", res.RV, p.Expected())
	}
}
