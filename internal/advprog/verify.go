package advprog

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/invariant"
	"repro/internal/machine"
)

// VerifyOpts parameterizes one adversarial verification.
type VerifyOpts struct {
	// Workers is the virtual worker count (default 4).
	Workers int
	// Engines lists the engines to run and cross-compare (default all
	// three).
	Engines []core.Engine
	// Plan names a fault preset to inject ("" = fault-free); the plan's
	// seed is the program seed, so one (seed, classes, plan) triple
	// reproduces the exact run.
	Plan string
	// AuditEvery is the auditor cadence (default 1: audit every pick).
	AuditEvery int64
}

// AllEngines is the default engine set Verify cross-compares.
func AllEngines() []core.Engine {
	return []core.Engine{core.EngineSequential, core.EngineParallel, core.EngineThroughput}
}

// Verify runs the program on every requested engine with the canary map
// armed and the invariant auditor at cadence AuditEvery, and asserts the
// three harness properties: no violation (the auditor aborts the run on
// any), the accumulator matches Expected on every engine, results are
// byte-identical across engines, and every stamped canary was retired.
// The returned error carries the failing engine and rule; nil means the
// program could not break the frame discipline.
func Verify(p *Program, o VerifyOpts) error {
	if p == nil || p.Root == nil {
		return errors.New("advprog: nil program")
	}
	workers := o.Workers
	if workers <= 0 {
		workers = 4
	}
	engines := o.Engines
	if len(engines) == 0 {
		engines = AllEngines()
	}
	auditEvery := o.AuditEvery
	if auditEvery <= 0 {
		auditEvery = 1
	}
	want := p.Expected()

	var ref *core.Result
	var refEngine core.Engine
	for _, engine := range engines {
		var inj *fault.Injector
		if o.Plan != "" {
			plan, err := fault.PlanByName(o.Plan)
			if err != nil {
				return err
			}
			plan.Seed = p.Seed
			inj = fault.New(&plan)
		}
		cm := machine.NewCanaryMap()
		res, err := core.Run(Workload(p), core.Config{
			Mode:    core.StackThreads,
			Workers: workers,
			Engine:  engine,
			Seed:    p.Seed,
			Audit:   invariant.New(auditEvery),
			Canary:  cm,
			Fault:   inj,
		})
		if err != nil {
			var v *invariant.Violation
			if errors.As(err, &v) {
				return fmt.Errorf("advprog: seed=%d classes=%s plan=%q engine=%s: rule %s broken: %w",
					p.Seed, p.Classes, o.Plan, engine, v.Rule, err)
			}
			return fmt.Errorf("advprog: seed=%d classes=%s plan=%q engine=%s: run failed: %w",
				p.Seed, p.Classes, o.Plan, engine, err)
		}
		if res.RV != want {
			return fmt.Errorf("advprog: seed=%d classes=%s plan=%q engine=%s: accumulator=%d, want %d",
				p.Seed, p.Classes, o.Plan, engine, res.RV, want)
		}
		if n := cm.LiveCount(); n != 0 {
			return fmt.Errorf("advprog: seed=%d classes=%s plan=%q engine=%s: %d canaries leaked (registered=%d retired=%d)",
				p.Seed, p.Classes, o.Plan, engine, n, cm.Registered, cm.Retired)
		}
		if ref == nil {
			ref, refEngine = res, engine
			continue
		}
		if err := sameResult(ref, res); err != nil {
			return fmt.Errorf("advprog: seed=%d classes=%s plan=%q: engines %s and %s diverge: %w",
				p.Seed, p.Classes, o.Plan, refEngine, engine, err)
		}
	}
	return nil
}

// sameResult compares the deterministic fields two engines must agree on.
func sameResult(a, b *core.Result) error {
	type pair struct {
		name string
		x, y int64
	}
	for _, p := range []pair{
		{"rv", a.RV, b.RV},
		{"time", a.Time, b.Time},
		{"workcycles", a.WorkCycles, b.WorkCycles},
		{"instrs", a.Instrs, b.Instrs},
		{"steals", a.Steals, b.Steals},
		{"attempts", a.Attempts, b.Attempts},
		{"rejects", a.Rejects, b.Rejects},
		{"picks", a.Picks, b.Picks},
	} {
		if p.x != p.y {
			return fmt.Errorf("%s: %d vs %d", p.name, p.x, p.y)
		}
	}
	return nil
}

// PlanForSeed rotates a seed through the fault-free run and every
// simulation-perturbing preset, adversarial first — the fuzz driver's
// default chaos schedule.
func PlanForSeed(seed uint64) string {
	plans := append([]string{"", "adversarial"}, fault.SimPlanNames()...)
	return plans[seed%uint64(len(plans))]
}
