// Package advprog generates adversarial fork-tree programs for the
// stack-safety harness: hostile-but-well-formed programs that attack the
// frame discipline the way "Formalizing Stack Safety as a Security
// Property" attacks calling conventions. Where randprog exercises the happy
// path, advprog concentrates the shapes most likely to break frame
// retention: fork nests at least 64 levels deep, epilogue races (a child
// finishing at the exact pick its parent's frame retires), args-region edge
// sizes (0-, 1- and 12-argument calls, the register-window spill boundary),
// reuse-after-retire probes (reads of dead frame slots below the stack
// top), and blocking storms (runs of forced suspensions).
//
// Every generated frame stamps per-frame canary words through the canary
// builtins; the invariant auditor's caller-integrity and
// frame-confidentiality rules watch the resulting taint map, so any program
// that manages to read or clobber another frame's retained state fails the
// run with a typed violation instead of silently corrupting the result.
//
// The generator is deterministic in (seed, classes): a failing fuzz input
// reproduces exactly from its two numbers.
package advprog

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/apps"
	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/stlib"
)

// Class is a bitmask of attack classes. Zero means AllClasses.
type Class uint8

// Attack classes.
const (
	// DeepNest grows a fork chain of at least MinNestDepth levels.
	DeepNest Class = 1 << iota
	// ArgsEdge mixes calls with 0-, 1- and 12-word argument regions into
	// the tree, forcing outgoing-args extents at both edges.
	ArgsEdge
	// EpilogueRace forks and joins a trivial leaf immediately before a
	// frame retires, so the child finishes at the pick adjacent to the
	// parent's epilogue.
	EpilogueRace
	// ReuseProbe reads a retired frame's slot below the stack top into a
	// dead register — legal (the space is free) but only if the runtime
	// really finished the frame there.
	ReuseProbe
	// BlockStorm raises the count of children that park on gates their
	// parent opens later — runs of forced suspensions.
	BlockStorm

	// AllClasses enables every attack class.
	AllClasses Class = 1<<5 - 1
)

// MinNestDepth is the minimum fork-chain depth the DeepNest class emits.
const MinNestDepth = 64

var classNames = []struct {
	c    Class
	name string
}{
	{DeepNest, "deepnest"},
	{ArgsEdge, "argsedge"},
	{EpilogueRace, "epiloguerace"},
	{ReuseProbe, "reuseprobe"},
	{BlockStorm, "blockstorm"},
}

func (c Class) String() string {
	if c&AllClasses == 0 {
		return "none"
	}
	var parts []string
	for _, cn := range classNames {
		if c&cn.c != 0 {
			parts = append(parts, cn.name)
		}
	}
	return strings.Join(parts, "+")
}

// ParseClasses parses a comma-separated class list ("deepnest,argsedge"),
// "all", or a decimal bitmask.
func ParseClasses(s string) (Class, error) {
	s = strings.TrimSpace(s)
	switch s {
	case "", "all":
		return AllClasses, nil
	}
	var c Class
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		found := false
		for _, cn := range classNames {
			if cn.name == part {
				c |= cn.c
				found = true
				break
			}
		}
		if !found {
			var bits uint8
			if _, err := fmt.Sscanf(part, "%d", &bits); err != nil {
				names := make([]string, len(classNames))
				for i, cn := range classNames {
					names[i] = cn.name
				}
				return 0, fmt.Errorf("advprog: unknown class %q (have %s, all)", part, strings.Join(names, ", "))
			}
			c |= Class(bits) & AllClasses
		}
	}
	return c, nil
}

// Node is one node of an adversarial fork tree.
type Node struct {
	ID       int64
	Children []*Node
	// Work is straight-line compute before contributing.
	Work int
	// Blockers is the number of children parked on gates the parent opens
	// later (forced suspensions).
	Blockers int
	// Canaries is the number of canary locals this frame stamps (>= 1).
	Canaries int
	// PrivMask marks which canaries are private (bit i = canary i);
	// private words fall under the frame-confidentiality rule.
	PrivMask uint64
	// Edge selects an args-region edge call: -1 none, 0/1/12 = the helper
	// with that argument count. The helper's return value feeds the
	// verified accumulator.
	Edge int
	// Probe reads a dead frame slot below the stack top into a dead
	// register (reuse-after-retire probe).
	Probe bool
	// Race forks and joins a trivial leaf immediately before retiring.
	Race bool
}

// Program is a generated adversarial program.
type Program struct {
	Seed    uint64
	Classes Class
	Root    *Node
	// Nodes is the tree's node count; NestDepth its longest root chain.
	Nodes     int
	NestDepth int
}

// FromSeed deterministically generates the adversarial program for
// (seed, classes). classes == 0 selects AllClasses.
func FromSeed(seed uint64, classes Class) *Program {
	classes &= AllClasses
	if classes == 0 {
		classes = AllClasses
	}
	rng := rand.New(rand.NewSource(int64(seed ^ 0x9e3779b97f4a7c15)))
	id := int64(0)

	newNode := func() *Node {
		id++
		n := &Node{
			ID:       id,
			Work:     rng.Intn(8),
			Canaries: 1 + rng.Intn(3),
			PrivMask: uint64(rng.Int63()),
			Edge:     -1,
		}
		if classes&BlockStorm != 0 {
			n.Blockers = rng.Intn(3)
		} else if rng.Intn(4) == 0 {
			n.Blockers = rng.Intn(2)
		}
		if classes&ArgsEdge != 0 {
			switch rng.Intn(4) {
			case 0:
				n.Edge = 0
			case 1:
				n.Edge = 1
			case 2:
				n.Edge = 12
			}
		}
		if classes&ReuseProbe != 0 && rng.Intn(2) == 0 {
			n.Probe = true
		}
		if classes&EpilogueRace != 0 && rng.Intn(2) == 0 {
			n.Race = true
		}
		return n
	}

	var subtree func(depth int) *Node
	subtree = func(depth int) *Node {
		n := newNode()
		if depth > 0 {
			fan := rng.Intn(3)
			for i := 0; i < fan; i++ {
				n.Children = append(n.Children, subtree(depth-1))
			}
		}
		return n
	}

	var root *Node
	if classes&DeepNest != 0 {
		// A single-child chain of >= MinNestDepth frames, every one of
		// them stamping canaries, with a small random crown at the tail.
		depth := MinNestDepth + rng.Intn(17)
		root = newNode()
		cur := root
		for i := 1; i < depth; i++ {
			c := newNode()
			// Keep the chain itself lean: blockers on every level would
			// dominate runtime without adding nest depth.
			if i%8 != 0 {
				c.Blockers = 0
			}
			cur.Children = []*Node{c}
			cur = c
		}
		cur.Children = append(cur.Children, subtree(2))
	} else {
		root = subtree(3 + rng.Intn(2))
	}

	p := &Program{Seed: seed, Classes: classes, Root: root, Nodes: int(id)}
	p.NestDepth = nestDepth(root)
	return p
}

func nestDepth(n *Node) int {
	best := 0
	for _, c := range n.Children {
		if d := nestDepth(c); d > best {
			best = d
		}
	}
	return best + 1
}

// Expected computes the accumulator value the program must produce: each
// node contributes its id, each blocker 7, and each args-edge call its
// helper's return value.
func Expected(n *Node) int64 {
	total := n.ID + 7*int64(n.Blockers)
	switch n.Edge {
	case 0:
		total += edge0RV
	case 1:
		total += n.ID + 1
	case 12:
		total += 12*n.ID + wideSumBias
	}
	for _, c := range n.Children {
		total += Expected(c)
	}
	return total
}

// Expected returns the accumulator value the whole program must produce.
func (p *Program) Expected() int64 { return Expected(p.Root) }

const (
	// edge0RV is what the zero-argument edge helper returns.
	edge0RV = 11
	// wideSumBias is sum(0..11): the wide helper receives id+i for
	// i in 0..11 and returns their sum, 12*id + wideSumBias.
	wideSumBias = 66
	// wideArgs is the max-args-region edge: wider than any register
	// window, so every argument travels through the SP-relative region.
	wideArgs = 12
)

// canaryVal is the deterministic stamp value of canary i of node id.
func canaryVal(seed uint64, id int64, i int) int64 {
	v := seed*2654435761 + uint64(id)*1000003 + uint64(i)*7919
	return int64(v&0x3fffffff) | 1
}

// Emit generates the program's procedures into u (join library already
// added): one procedure per node, the shared blocker and race leaf, the
// args-edge helpers, and the amain/boot entry.
//
// Node signature: anode_<id>(env, jcParent). env[0]=acc cell, env[1]=lock.
func Emit(u *asm.Unit, p *Program) {
	// ablocker(gate, done, env, jcParent): park on gate, contribute 7,
	// finish done and the parent's counter.
	blk := u.Proc("ablocker", 4, stlib.CtxWords)
	blk.LoadArg(isa.R0, 0)
	blk.LoadArg(isa.R1, 1)
	blk.LoadArg(isa.R2, 2)
	blk.LoadArg(isa.R3, 3)
	stlib.JCJoinInline(blk, isa.R0, 0)
	blk.Load(isa.T0, isa.R2, 1)
	stlib.LockAddrInline(blk, isa.T0)
	blk.Load(isa.T1, isa.R2, 0)
	blk.Load(isa.T2, isa.T1, 0)
	blk.AddI(isa.T2, isa.T2, 7)
	blk.Store(isa.T1, 0, isa.T2)
	stlib.UnlockAddrInline(blk, isa.T0)
	stlib.JCFinishInline(blk, isa.R1)
	stlib.JCFinishInline(blk, isa.R3)
	blk.RetVoid()

	// aleaf(jc): the epilogue-race child — finish the counter and return
	// immediately, so the finish lands at the pick adjacent to the
	// parent's retire.
	leaf := u.Proc("aleaf", 1, 0)
	leaf.LoadArg(isa.R0, 0)
	stlib.JCFinishInline(leaf, isa.R0)
	leaf.RetVoid()

	// Args-region edge helpers.
	e0 := u.Proc("aedge0", 0, 0)
	e0.Const(isa.RV, edge0RV)
	e0.Ret(isa.RV)

	e1 := u.Proc("aedge1", 1, 0)
	e1.LoadArg(isa.T0, 0)
	e1.AddI(isa.RV, isa.T0, 1)
	e1.Ret(isa.RV)

	ew := u.Proc("awide", wideArgs, 0)
	ew.LoadArg(isa.T0, 0)
	for i := 1; i < wideArgs; i++ {
		ew.LoadArg(isa.T1, i)
		ew.Add(isa.T0, isa.T0, isa.T1)
	}
	ew.Ret(isa.T0)

	var emit func(n *Node)
	emit = func(n *Node) {
		// Locals: child jc, gate jc, done jc, suspend ctx, then the
		// canary words.
		const (
			locJC   = 0
			locGate = stlib.JCWords
			locDone = 2 * stlib.JCWords
			locCtx  = 3 * stlib.JCWords
		)
		locCanary := 3*stlib.JCWords + stlib.CtxWords
		b := u.Proc(fmt.Sprintf("anode_%d", n.ID), 2, locCanary+n.Canaries)
		b.LoadArg(isa.R0, 0) // env
		b.LoadArg(isa.R1, 1) // parent jc

		// Stamp the frame's canaries as soon as the frame is formed: from
		// here to the retire sequence these words are retained state no
		// other thread may touch.
		for i := 0; i < n.Canaries; i++ {
			flags := int64(0)
			if n.PrivMask&(1<<uint(i)) != 0 {
				flags = 1
			}
			b.LocalAddr(isa.T1, locCanary+i)
			b.Const(isa.T2, canaryVal(p.Seed, n.ID, i))
			b.Const(isa.T3, flags)
			b.SetArg(0, isa.T1)
			b.SetArg(1, isa.T2)
			b.SetArg(2, isa.T3)
			b.Call("canary")
		}

		for i := 0; i < n.Work; i++ {
			b.AddI(isa.T0, isa.T0, 3)
			b.MulI(isa.T0, isa.T0, 5)
		}

		// Args-region edge call; the helper's return value joins the
		// verified contribution so a clobbered argument region changes
		// the final answer.
		haveEdge := false
		switch n.Edge {
		case 0:
			b.Call("aedge0")
			haveEdge = true
		case 1:
			b.Const(isa.T0, n.ID)
			b.SetArg(0, isa.T0)
			b.Call("aedge1")
			haveEdge = true
		case 12:
			for i := 0; i < wideArgs; i++ {
				b.Const(isa.T0, n.ID+int64(i))
				b.SetArg(i, isa.T0)
			}
			b.Call("awide")
			haveEdge = true
		}
		if haveEdge {
			b.Mov(isa.R5, isa.RV)
		}

		// Contribute id (+ edge RV) under the lock.
		b.Load(isa.T0, isa.R0, 1)
		stlib.LockAddrInline(b, isa.T0)
		b.Load(isa.T1, isa.R0, 0)
		b.Load(isa.T2, isa.T1, 0)
		b.AddI(isa.T2, isa.T2, n.ID)
		if haveEdge {
			b.Add(isa.T2, isa.T2, isa.R5)
		}
		b.Store(isa.T1, 0, isa.T2)
		stlib.UnlockAddrInline(b, isa.T0)

		// Fork all structural children under one counter.
		if len(n.Children) > 0 {
			b.LocalAddr(isa.R2, locJC)
			stlib.JCInitInline(b, isa.R2, int64(len(n.Children)))
			for _, c := range n.Children {
				b.SetArg(0, isa.R0)
				b.SetArg(1, isa.R2)
				b.Fork(fmt.Sprintf("anode_%d", c.ID))
				b.Poll()
			}
			stlib.JCJoinInline(b, isa.R2, locCtx)
		}

		// Blockers: fork one at a time, park it, release it, wait for it.
		for i := 0; i < n.Blockers; i++ {
			b.LocalAddr(isa.R3, locGate)
			b.LocalAddr(isa.R4, locDone)
			b.LocalAddr(isa.R2, locJC)
			stlib.JCInitInline(b, isa.R3, 1)
			stlib.JCInitInline(b, isa.R4, 1)
			stlib.JCInitInline(b, isa.R2, 1)
			b.SetArg(0, isa.R3)
			b.SetArg(1, isa.R4)
			b.SetArg(2, isa.R0)
			b.SetArg(3, isa.R2)
			b.Fork("ablocker")
			b.Poll()
			stlib.JCFinishInline(b, isa.R3) // open the gate
			stlib.JCJoinInline(b, isa.R4, locCtx)
			stlib.JCJoinInline(b, isa.R2, locCtx)
		}

		// Reuse-after-retire probe: children (or blockers) built frames
		// below this one and retired them; the word just under the stack
		// top is dead space the runtime may hand to anyone. Reading it is
		// legal exactly because retired frames carry no protected state —
		// a live canary down there would be a confidentiality violation.
		if n.Probe {
			b.Load(isa.T6, isa.SP, -1)
			b.Load(isa.T6, isa.SP, -2)
		}

		// Epilogue race: a last child finishing at the pick adjacent to
		// this frame's retire.
		if n.Race {
			b.LocalAddr(isa.R2, locJC)
			stlib.JCInitInline(b, isa.R2, 1)
			b.SetArg(0, isa.R2)
			b.Fork("aleaf")
			b.Poll()
			stlib.JCJoinInline(b, isa.R2, locCtx)
		}

		// Retire the canaries last — the live window extends to the edge
		// of the epilogue.
		for i := 0; i < n.Canaries; i++ {
			b.LocalAddr(isa.T1, locCanary+i)
			b.Const(isa.T2, canaryVal(p.Seed, n.ID, i))
			b.SetArg(0, isa.T1)
			b.SetArg(1, isa.T2)
			b.Call("canary_retire")
		}

		stlib.JCFinishInline(b, isa.R1)
		b.RetVoid()

		for _, c := range n.Children {
			emit(c)
		}
	}
	emit(p.Root)

	// amain(env): run the root under a counter and return the
	// accumulator.
	m := u.Proc("amain", 1, stlib.JCWords+stlib.CtxWords)
	m.LoadArg(isa.R0, 0)
	m.LocalAddr(isa.R1, 0)
	stlib.JCInitInline(m, isa.R1, 1)
	m.SetArg(0, isa.R0)
	m.SetArg(1, isa.R1)
	m.Fork(fmt.Sprintf("anode_%d", p.Root.ID))
	m.Poll()
	stlib.JCJoinInline(m, isa.R1, stlib.JCWords)
	m.Load(isa.T0, isa.R0, 0)
	m.Load(isa.RV, isa.T0, 0)
	m.Ret(isa.RV)
	stlib.AddBoot(u, "amain", 1)
}

// Workload assembles the program into a runnable workload: join library,
// node procedures, heap setup allocating the accumulator, lock and
// environment. Deterministic — equal programs produce identical workloads.
func Workload(p *Program) *apps.Workload {
	u := asm.NewUnit()
	stlib.AddJoinLib(u)
	Emit(u, p)
	w := &apps.Workload{
		Name:    "advtree",
		Variant: apps.ST,
		Procs:   u.MustBuild(),
		Entry:   stlib.ProcBoot,
	}
	w.HeapWords = 1 << 10
	w.Setup = func(m *mem.Memory) ([]int64, error) {
		acc, err := m.Alloc(1)
		if err != nil {
			return nil, err
		}
		lock, _ := m.Alloc(1)
		env, err := m.Alloc(2)
		if err != nil {
			return nil, err
		}
		m.WriteWords(env, []int64{acc, lock})
		return []int64{env}, nil
	}
	return w
}
