package advprog

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
)

// fuzzEngines returns the engine set under test, filtered by the
// ST_FUZZ_ENGINES environment variable (comma-separated names) so CI can
// shard the fuzz smoke job per engine. Unset or empty means all three.
func fuzzEngines() ([]core.Engine, error) {
	spec := strings.TrimSpace(os.Getenv("ST_FUZZ_ENGINES"))
	if spec == "" {
		return AllEngines(), nil
	}
	var out []core.Engine
	for _, name := range strings.Split(spec, ",") {
		switch strings.TrimSpace(strings.ToLower(name)) {
		case "sequential":
			out = append(out, core.EngineSequential)
		case "parallel":
			out = append(out, core.EngineParallel)
		case "throughput":
			out = append(out, core.EngineThroughput)
		case "":
		default:
			return nil, fmt.Errorf("ST_FUZZ_ENGINES: unknown engine %q", name)
		}
	}
	if len(out) == 0 {
		return AllEngines(), nil
	}
	return out, nil
}

// FuzzAdversarial is the native fuzz entry: a failing input is just a
// (seed, classBits) pair. Every input becomes a hostile-but-well-formed
// program run on the configured engines with canaries armed, auditor at
// cadence 1, and the seed's rotation pick of fault plan injected.
func FuzzAdversarial(f *testing.F) {
	engines, err := fuzzEngines()
	if err != nil {
		f.Fatal(err)
	}
	for seed := uint64(0); seed < 8; seed++ {
		f.Add(seed, uint8(AllClasses))
	}
	f.Add(uint64(3), uint8(DeepNest))
	f.Add(uint64(5), uint8(ArgsEdge|ReuseProbe))
	f.Add(uint64(9), uint8(EpilogueRace|BlockStorm))
	f.Fuzz(func(t *testing.T, seed uint64, classBits uint8) {
		classes := Class(classBits) & AllClasses
		p := FromSeed(seed, classes)
		o := VerifyOpts{Engines: engines, Plan: PlanForSeed(seed)}
		if err := Verify(p, o); err != nil {
			t.Fatal(err)
		}
	})
}

// TestAdversarialSweep is the nightly seed sweep, gated on ST_ADV_SEEDS:
// run that many consecutive seeds, all classes, all engines, with the
// per-seed fault-plan rotation. The nightly workflow sets ST_ADV_SEEDS=256.
func TestAdversarialSweep(t *testing.T) {
	spec := os.Getenv("ST_ADV_SEEDS")
	if spec == "" {
		t.Skip("set ST_ADV_SEEDS=N to run the adversarial seed sweep")
	}
	n, err := strconv.Atoi(spec)
	if err != nil || n <= 0 {
		t.Fatalf("ST_ADV_SEEDS=%q: want a positive integer", spec)
	}
	engines, err := fuzzEngines()
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < uint64(n); seed++ {
		p := FromSeed(seed, AllClasses)
		if err := Verify(p, VerifyOpts{Engines: engines, Plan: PlanForSeed(seed)}); err != nil {
			t.Errorf("sweep seed %d: %v", seed, err)
		}
	}
}
