package snapshot

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrNotFound reports a key with no stored snapshot.
var ErrNotFound = errors.New("snapshot: not found")

// Store persists encoded snapshots by job key. Implementations must make
// Put atomic with respect to Get: a reader sees either the previous payload
// or the new one, never a torn write. Keys are arbitrary strings (canonical
// job tuples); payloads are opaque to the store.
type Store interface {
	Put(key string, data []byte) error
	Get(key string) ([]byte, error)
	Delete(key string) error
	List() ([]string, error)
}

// MemStore is an in-memory Store for tests and single-process use.
type MemStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

func NewMemStore() *MemStore { return &MemStore{m: make(map[string][]byte)} }

func (s *MemStore) Put(key string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := make([]byte, len(data))
	copy(cp, data)
	s.m[key] = cp
	return nil
}

func (s *MemStore) Get(key string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.m[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

func (s *MemStore) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, key)
	return nil
}

func (s *MemStore) List() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}

// DirStore keeps one file per key under a directory. Filenames are the
// SHA-256 of the key (keys contain characters hostile to filesystems), so
// List recovers keys by partially decoding each file's header. Writes go
// through a temp file + rename, making Put atomic — several stserve nodes
// can safely share one checkpoint directory, which is what lets a cluster
// resume a dead node's jobs.
type DirStore struct {
	dir string
}

const snapExt = ".stsnap"

// NewDirStore creates the directory if needed and returns a store over it.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapshot: dir store: %w", err)
	}
	return &DirStore{dir: dir}, nil
}

// Dir returns the backing directory.
func (s *DirStore) Dir() string { return s.dir }

func (s *DirStore) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+snapExt)
}

func (s *DirStore) Put(key string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("snapshot: dir store put: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("snapshot: dir store put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("snapshot: dir store put: %w", err)
	}
	if err := os.Rename(name, s.path(key)); err != nil {
		os.Remove(name)
		return fmt.Errorf("snapshot: dir store put: %w", err)
	}
	return nil
}

func (s *DirStore) Get(key string) ([]byte, error) {
	data, err := os.ReadFile(s.path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	if err != nil {
		return nil, fmt.Errorf("snapshot: dir store get: %w", err)
	}
	return data, nil
}

func (s *DirStore) Delete(key string) error {
	err := os.Remove(s.path(key))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("snapshot: dir store delete: %w", err)
	}
	return nil
}

// List returns the keys of all decodable snapshots in the directory,
// sorted. Files with unreadable headers (foreign versions, partial writes
// that escaped the atomic path) are skipped, not errors — a mixed-version
// shared directory must not break listing.
func (s *DirStore) List() ([]string, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("snapshot: dir store list: %w", err)
	}
	var keys []string
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), snapExt) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, e.Name()))
		if err != nil {
			continue
		}
		key, err := DecodeKey(data)
		if err != nil {
			continue
		}
		keys = append(keys, key)
	}
	sort.Strings(keys)
	return keys, nil
}
