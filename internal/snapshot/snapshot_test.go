package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/exportset"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/sched"
)

// sample builds a snapshot exercising every field of the format, including
// empty and non-empty variants of the optional collections.
func sample() *Snapshot {
	w0 := machine.WorkerState{
		PC:     0x40,
		Cycles: 1234,
		Stats:  machine.Stats{Instrs: 900, Calls: 31, Suspends: 2, Restarts: 1, Exports: 4, StackHighWater: 96, Segments: 2, SegmentsLive: 1},
		Cur:    1,
		Free:   []int{0},
		Poll:   true,
		WLLo:   64, WLHi: 72,
		Segs: []machine.SegState{
			{Lo: 1 << 16, Hi: 1<<16 + 512},
			{Lo: 1 << 17, Hi: 1<<17 + 512, Exported: []exportset.Entry{{FP: 131200, Low: 131136}, {FP: 131328, Low: 131264}}},
		},
		Ready: []machine.ContextState{{ResumePC: 0x88, Top: 131100, Bottom: 131072}},
	}
	w0.Regs[3] = -7
	w1 := machine.WorkerState{
		Cur:  0,
		Segs: []machine.SegState{{Lo: 1 << 18, Hi: 1<<18 + 512}},
	}
	th := machine.ThunkState{PC: 0x100, ResumePC: 0x104, Callsite: 0x90, IsFork: true, FP: 131200}
	th.Regs[0] = 42
	return &Snapshot{
		Key:     "app=fib|n=20|mode=st|workers=2|seed=1",
		TraceID: "a1b2c3d4",
		Mach: &machine.State{
			Mem:       &mem.State{Words: []int64{0, 1, -2, 3, 1 << 40}, HeapNext: 1 << 20},
			Workers:   []machine.WorkerState{w0, w1},
			Thunks:    []machine.ThunkState{th},
			NextThunk: 5,
			Rng:       0xdeadbeefcafe,
		},
		Sched: &sched.SchedState{
			Status:   []int{0, 1},
			WakeAt:   []int64{0, 977},
			Reqs:     []sched.ReqState{{Thief: -1}, {Thief: 0, PostedAt: 880}},
			Spurious: []bool{false, true},
			Rng:      99,
			Picks:    41,
			Steals:   3, Attempts: 7, Rejects: 2,
		},
		Fault: &fault.State{Streams: []uint64{1, 2, 3, 4, 5, 6, 7}},
		Obs: &obs.CollectorState{
			SamplePeriod: 100,
			Makespan:     977,
			Samples:      9,
			Workers: []obs.WorkerObsState{
				{ID: 0, Total: 900, Period: 100, NextSample: 1000, Samples: 9, Attributed: 880},
				{ID: 1, Total: 70},
			},
			Events: []obs.Event{
				{Ts: 10, Dur: 5, Worker: 0, Kind: 'X', Name: "steal", Args: []obs.Arg{{K: "victim", V: 1}}},
				{Ts: 20, Worker: 1, Kind: 'i', Name: "idle"},
			},
			Flat:     []obs.NamedValue{{Name: "fib", V: 800}},
			Cum:      []obs.NamedValue{{Name: "boot", V: 900}, {Name: "fib", V: 850}},
			Counters: []obs.NamedValue{{Name: "sched.steals", V: 3}},
			Gauges:   []obs.NamedValue{{Name: "deque.depth", V: 2}},
			Hists: []obs.NamedHist{
				{Name: "sched.steal_latency", Count: 3, Sum: 60, Min: 10, Max: 30, Buckets: make([]int64, 48)},
			},
		},
		Events: []sched.TraceEvent{
			{Time: 880, Kind: sched.TraceRequest, Worker: 0, From: 1, Frame: 131200, ResumePC: 0x104, Latency: 0},
			{Time: 900, Kind: sched.TraceSteal, Worker: 0, From: 1, Frame: 131200, ResumePC: 0x104, Latency: 20},
		},
		Out: []byte("partial output\n"),
	}
}

func TestRoundTrip(t *testing.T) {
	s := sample()
	enc, err := Encode(s)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, s)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a, err := Encode(sample())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(sample())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("equal snapshots encoded to different bytes")
	}
}

func TestRoundTripMinimal(t *testing.T) {
	s := &Snapshot{
		Key: "k",
		Mach: &machine.State{
			Mem:     &mem.State{Words: []int64{}, HeapNext: 0},
			Workers: []machine.WorkerState{{Segs: []machine.SegState{{Lo: 0, Hi: 512}}}},
		},
		Sched: &sched.SchedState{Status: []int{0}, WakeAt: []int64{0}, Reqs: []sched.ReqState{{Thief: -1}}, Spurious: []bool{false}},
	}
	enc, err := Encode(s)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Fault != nil || got.Obs != nil || got.Events != nil {
		t.Fatalf("optional sections should decode nil, got %+v", got)
	}
	if got.Key != "k" || len(got.Mach.Workers) != 1 {
		t.Fatalf("minimal round-trip mismatch: %+v", got)
	}
}

func TestDecodeKey(t *testing.T) {
	enc, err := Encode(sample())
	if err != nil {
		t.Fatal(err)
	}
	key, err := DecodeKey(enc)
	if err != nil {
		t.Fatalf("DecodeKey: %v", err)
	}
	if want := sample().Key; key != want {
		t.Fatalf("DecodeKey = %q, want %q", key, want)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Decode([]byte("not a snapshot at all, definitely")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
	if _, err := Decode(nil); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("nil payload err = %v, want ErrBadMagic", err)
	}
}

func TestVersionMismatch(t *testing.T) {
	enc, err := Encode(sample())
	if err != nil {
		t.Fatal(err)
	}
	// The version field sits right after the 6-byte magic.
	binary.LittleEndian.PutUint32(enc[6:], FormatVersion+1)
	_, err = Decode(enc)
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("err = %v, want *VersionError", err)
	}
	if ve.Got != FormatVersion+1 || ve.Want != FormatVersion {
		t.Fatalf("VersionError = %+v", ve)
	}
	if _, err := DecodeKey(enc); !errors.As(err, &ve) {
		t.Fatalf("DecodeKey err = %v, want *VersionError", err)
	}
}

func TestCorruption(t *testing.T) {
	enc, err := Encode(sample())
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the body: the CRC trailer must catch it.
	flipped := bytes.Clone(enc)
	flipped[len(flipped)/2] ^= 0xff
	if _, err := Decode(flipped); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit-flip err = %v, want ErrCorrupt", err)
	}
	// Truncation inside the body.
	if _, err := Decode(enc[:len(enc)-20]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncation err = %v, want ErrCorrupt", err)
	}
	// Trailing garbage (with a recomputed CRC so only the structural check
	// can catch it) must also be rejected.
	padded := append(bytes.Clone(enc[:len(enc)-4]), 0, 0, 0)
	padded = binary.LittleEndian.AppendUint32(padded, crc32.ChecksumIEEE(padded))
	if _, err := Decode(padded); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing-bytes err = %v, want ErrCorrupt", err)
	}
}

func TestStores(t *testing.T) {
	dir, err := NewDirStore(filepath.Join(t.TempDir(), "ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	for name, st := range map[string]Store{"mem": NewMemStore(), "dir": dir} {
		t.Run(name, func(t *testing.T) {
			enc, err := Encode(sample())
			if err != nil {
				t.Fatal(err)
			}
			key := sample().Key
			if _, err := st.Get(key); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get before Put: err = %v, want ErrNotFound", err)
			}
			if err := st.Put(key, enc); err != nil {
				t.Fatalf("Put: %v", err)
			}
			got, err := st.Get(key)
			if err != nil {
				t.Fatalf("Get: %v", err)
			}
			if !bytes.Equal(got, enc) {
				t.Fatal("Get returned different bytes than Put stored")
			}
			keys, err := st.List()
			if err != nil {
				t.Fatalf("List: %v", err)
			}
			if len(keys) != 1 || keys[0] != key {
				t.Fatalf("List = %v, want [%q]", keys, key)
			}
			if err := st.Delete(key); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			if err := st.Delete(key); err != nil {
				t.Fatalf("Delete (absent) must be idempotent: %v", err)
			}
			if _, err := st.Get(key); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get after Delete: err = %v, want ErrNotFound", err)
			}
			keys, err = st.List()
			if err != nil || len(keys) != 0 {
				t.Fatalf("List after Delete = %v, %v", keys, err)
			}
		})
	}
}
