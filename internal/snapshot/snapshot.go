// Package snapshot is the versioned, deterministic binary codec for
// suspended runs: a captured continuation (machine, scheduler and
// fault-injector state at a pick boundary) bundled with the partial
// artifacts accumulated so far (observability state, migration event log,
// program output prefix) and the job identity it belongs to.
//
// Determinism is a hard contract: encoding the same Snapshot twice yields
// identical bytes (all map-shaped state is exported as sorted slices by the
// owning packages), so checkpoints can be compared, content-addressed and
// deduplicated. The format is explicitly versioned — a node upgraded to a
// newer encoding refuses stale artifacts with a typed *VersionError instead
// of misdecoding them — and integrity-checked with a CRC32 trailer.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/exportset"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/sched"
)

// FormatVersion is the current snapshot encoding version. Bump it on any
// layout change; decoders reject other versions with a *VersionError, and
// the serving layer keys caches and checkpoints by it so an upgraded node
// can never serve or resume a stale-format artifact.
const FormatVersion = 1

// magic identifies snapshot files/payloads.
var magic = [6]byte{'S', 'T', 'S', 'N', 'A', 'P'}

// ErrBadMagic reports a payload that is not a snapshot at all.
var ErrBadMagic = errors.New("snapshot: bad magic (not a snapshot)")

// ErrCorrupt reports a snapshot that fails structural or checksum
// validation.
var ErrCorrupt = errors.New("snapshot: corrupt payload")

// VersionError reports a snapshot encoded under a different format version.
type VersionError struct {
	Got, Want uint32
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("snapshot: format version %d, this build reads only %d", e.Got, e.Want)
}

// Snapshot is one suspended run: identity, continuation, and the partial
// deterministic artifacts accumulated up to the capture boundary.
type Snapshot struct {
	// Key is the canonical job tuple the continuation belongs to (the
	// serving layer's versioned cache key). Resuming under a different
	// tuple would silently produce wrong bytes, so consumers check it.
	Key string
	// TraceID joins the resumed run to the originating request's
	// end-to-end trace, across nodes.
	TraceID string
	// Mach, Sched and Fault are the continuation proper.
	Mach  *machine.State
	Sched *sched.SchedState
	Fault *fault.State
	// Obs is the collector state at capture; nil when the run had none.
	Obs *obs.CollectorState
	// Events is the migration event log prefix at capture.
	Events []sched.TraceEvent
	// Out is the program output prefix at capture.
	Out []byte
}

// writer serializes values into a growing buffer.
type writer struct{ buf []byte }

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) i64(v int64)  { w.u64(uint64(v)) }
func (w *writer) boolean(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *writer) str(s string) {
	w.u64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *writer) bytes(b []byte) {
	w.u64(uint64(len(b)))
	w.buf = append(w.buf, b...)
}
func (w *writer) i64s(vs []int64) {
	w.u64(uint64(len(vs)))
	for _, v := range vs {
		w.i64(v)
	}
}
func (w *writer) u64s(vs []uint64) {
	w.u64(uint64(len(vs)))
	for _, v := range vs {
		w.u64(v)
	}
}

// reader deserializes from a buffer; the first structural violation sticks.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = ErrCorrupt
	}
}
func (r *reader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}
func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}
func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}
func (r *reader) i64() int64 { return int64(r.u64()) }
func (r *reader) boolean() bool {
	switch r.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail()
		return false
	}
}

// length reads a collection length and bounds it by the bytes remaining
// (every element costs at least one byte), so corrupt lengths fail fast
// instead of allocating wildly.
func (r *reader) length() int {
	n := r.u64()
	if r.err != nil || n > uint64(len(r.b)-r.off) {
		r.fail()
		return 0
	}
	return int(n)
}
func (r *reader) str() string {
	n := r.length()
	if r.err != nil {
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}
func (r *reader) bytes() []byte {
	n := r.length()
	if r.err != nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.b[r.off:r.off+n])
	r.off += n
	return out
}
func (r *reader) count(elemBytes int) int {
	n := r.u64()
	if r.err != nil || elemBytes <= 0 || n > uint64((len(r.b)-r.off)/elemBytes) {
		r.fail()
		return 0
	}
	return int(n)
}
func (r *reader) i64s() []int64 {
	n := r.count(8)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = r.i64()
	}
	return out
}
func (r *reader) u64s() []uint64 {
	n := r.count(8)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.u64()
	}
	return out
}

// Encode serializes the snapshot. Equal snapshots encode to equal bytes.
func Encode(s *Snapshot) ([]byte, error) {
	if s == nil || s.Mach == nil || s.Sched == nil {
		return nil, fmt.Errorf("snapshot: encode: incomplete snapshot (nil machine or scheduler state)")
	}
	w := &writer{buf: make([]byte, 0, 64+8*len(s.Mach.Mem.Words))}
	w.buf = append(w.buf, magic[:]...)
	w.u32(FormatVersion)
	w.str(s.Key)
	w.str(s.TraceID)

	encodeMach(w, s.Mach)
	encodeSched(w, s.Sched)

	w.boolean(s.Fault != nil)
	if s.Fault != nil {
		w.u64s(s.Fault.Streams)
	}
	w.boolean(s.Obs != nil)
	if s.Obs != nil {
		encodeObs(w, s.Obs)
	}

	w.u64(uint64(len(s.Events)))
	for _, e := range s.Events {
		w.i64(e.Time)
		w.i64(int64(e.Kind))
		w.i64(int64(e.Worker))
		w.i64(int64(e.From))
		w.i64(e.Frame)
		w.i64(e.ResumePC)
		w.i64(e.Latency)
	}
	w.bytes(s.Out)

	w.u32(crc32.ChecksumIEEE(w.buf))
	return w.buf, nil
}

func encodeMach(w *writer, st *machine.State) {
	w.i64s(st.Mem.Words)
	w.i64(st.Mem.HeapNext)
	w.u64(uint64(len(st.Workers)))
	for i := range st.Workers {
		ws := &st.Workers[i]
		for _, v := range ws.Regs {
			w.i64(v)
		}
		w.i64(ws.PC)
		w.i64(ws.Cycles)
		encodeStats(w, &ws.Stats)
		w.i64(int64(ws.Cur))
		w.u64(uint64(len(ws.Free)))
		for _, f := range ws.Free {
			w.i64(int64(f))
		}
		w.boolean(ws.Poll)
		w.i64(ws.WLLo)
		w.i64(ws.WLHi)
		w.u64(uint64(len(ws.Segs)))
		for _, sg := range ws.Segs {
			w.i64(sg.Lo)
			w.i64(sg.Hi)
			w.u64(uint64(len(sg.Exported)))
			for _, e := range sg.Exported {
				w.i64(e.FP)
				w.i64(e.Low)
			}
		}
		w.u64(uint64(len(ws.Ready)))
		for _, c := range ws.Ready {
			w.i64(c.ResumePC)
			w.i64(c.Top)
			w.i64(c.Bottom)
			for _, v := range c.Regs {
				w.i64(v)
			}
		}
	}
	w.u64(uint64(len(st.Thunks)))
	for _, t := range st.Thunks {
		w.i64(t.PC)
		w.i64(t.ResumePC)
		w.i64(t.Callsite)
		w.boolean(t.IsFork)
		w.i64(t.FP)
		for _, v := range t.Regs {
			w.i64(v)
		}
	}
	w.i64(st.NextThunk)
	w.u64(st.Rng)
}

func encodeStats(w *writer, st *machine.Stats) {
	w.i64(st.Instrs)
	w.i64(st.Calls)
	w.i64(st.Suspends)
	w.i64(st.Restarts)
	w.i64(st.Exports)
	w.i64(st.Shrinks)
	w.i64(st.Extends)
	w.i64(st.StackHighWater)
	w.i64(st.Segments)
	w.i64(st.SegmentsLive)
}

func encodeSched(w *writer, st *sched.SchedState) {
	w.u64(uint64(len(st.Status)))
	for _, v := range st.Status {
		w.i64(int64(v))
	}
	w.i64s(st.WakeAt)
	w.u64(uint64(len(st.Reqs)))
	for _, r := range st.Reqs {
		w.i64(int64(r.Thief))
		w.i64(r.PostedAt)
	}
	w.u64(uint64(len(st.Spurious)))
	for _, v := range st.Spurious {
		w.boolean(v)
	}
	w.u64(st.Rng)
	w.i64(st.Picks)
	w.i64(st.Steals)
	w.i64(st.Attempts)
	w.i64(st.Rejects)
}

func encodeNamed(w *writer, vs []obs.NamedValue) {
	w.u64(uint64(len(vs)))
	for _, v := range vs {
		w.str(v.Name)
		w.i64(v.V)
	}
}

func encodeObs(w *writer, st *obs.CollectorState) {
	w.i64(st.SamplePeriod)
	w.i64(st.Makespan)
	w.i64(st.Samples)
	w.u64(uint64(len(st.Workers)))
	for _, o := range st.Workers {
		w.i64(int64(o.ID))
		for _, v := range o.Phase {
			w.i64(v)
		}
		w.i64(o.Total)
		w.i64(o.Period)
		w.i64(o.NextSample)
		w.i64(o.Samples)
		w.i64(o.Attributed)
	}
	w.u64(uint64(len(st.Events)))
	for _, e := range st.Events {
		w.i64(e.Ts)
		w.i64(e.Dur)
		w.i64(int64(e.Worker))
		w.u8(e.Kind)
		w.str(e.Name)
		w.u64(uint64(len(e.Args)))
		for _, a := range e.Args {
			w.str(a.K)
			w.i64(a.V)
		}
	}
	encodeNamed(w, st.Flat)
	encodeNamed(w, st.Cum)
	encodeNamed(w, st.Counters)
	encodeNamed(w, st.Gauges)
	w.u64(uint64(len(st.Hists)))
	for _, h := range st.Hists {
		w.str(h.Name)
		w.i64(h.Count)
		w.i64(h.Sum)
		w.i64(h.Min)
		w.i64(h.Max)
		w.i64s(h.Buckets)
	}
}

// header validates magic + version + CRC and returns a reader positioned
// after the version field.
func header(b []byte) (*reader, error) {
	if len(b) < len(magic)+4+4 {
		return nil, ErrBadMagic
	}
	for i := range magic {
		if b[i] != magic[i] {
			return nil, ErrBadMagic
		}
	}
	body, trailer := b[:len(b)-4], b[len(b)-4:]
	r := &reader{b: body, off: len(magic)}
	if v := r.u32(); v != FormatVersion {
		// Version is checked before the checksum: a stale-format artifact
		// must surface as a *VersionError, not as corruption.
		return nil, &VersionError{Got: v, Want: FormatVersion}
	}
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, ErrCorrupt
	}
	return r, nil
}

// DecodeKey reads just the job key from an encoded snapshot — enough for a
// checkpoint store to index its contents without decoding full memory
// images.
func DecodeKey(b []byte) (string, error) {
	r, err := header(b)
	if err != nil {
		return "", err
	}
	key := r.str()
	if r.err != nil {
		return "", r.err
	}
	return key, nil
}

// Decode deserializes an encoded snapshot, validating magic, version,
// checksum and structure. It returns ErrBadMagic, a *VersionError or
// ErrCorrupt (possibly wrapped) on invalid input.
func Decode(b []byte) (*Snapshot, error) {
	r, err := header(b)
	if err != nil {
		return nil, err
	}
	s := &Snapshot{
		Key:     r.str(),
		TraceID: r.str(),
		Mach:    decodeMach(r),
		Sched:   decodeSched(r),
	}
	if r.boolean() {
		s.Fault = &fault.State{Streams: r.u64s()}
	}
	if r.boolean() {
		s.Obs = decodeObs(r)
	}
	n := r.count(7 * 8)
	for i := 0; i < n; i++ {
		s.Events = append(s.Events, sched.TraceEvent{
			Time:     r.i64(),
			Kind:     sched.TraceKind(r.i64()),
			Worker:   int(r.i64()),
			From:     int(r.i64()),
			Frame:    r.i64(),
			ResumePC: r.i64(),
			Latency:  r.i64(),
		})
	}
	s.Out = r.bytes()
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.b)-r.off)
	}
	return s, nil
}

func decodeMach(r *reader) *machine.State {
	st := &machine.State{
		Mem: &mem.State{Words: r.i64s()},
	}
	st.Mem.HeapNext = r.i64()
	nw := r.count(8 * (int(isa.NumRegs) + 2))
	for i := 0; i < nw; i++ {
		var ws machine.WorkerState
		for j := range ws.Regs {
			ws.Regs[j] = r.i64()
		}
		ws.PC = r.i64()
		ws.Cycles = r.i64()
		decodeStats(r, &ws.Stats)
		ws.Cur = int(r.i64())
		nf := r.count(8)
		for j := 0; j < nf; j++ {
			ws.Free = append(ws.Free, int(r.i64()))
		}
		ws.Poll = r.boolean()
		ws.WLLo = r.i64()
		ws.WLHi = r.i64()
		ns := r.count(8 * 3)
		for j := 0; j < ns; j++ {
			sg := machine.SegState{Lo: r.i64(), Hi: r.i64()}
			ne := r.count(8 * 2)
			for k := 0; k < ne; k++ {
				sg.Exported = append(sg.Exported, exportset.Entry{FP: r.i64(), Low: r.i64()})
			}
			ws.Segs = append(ws.Segs, sg)
		}
		nr := r.count(8 * (3 + isa.NumCalleeSave))
		for j := 0; j < nr; j++ {
			var c machine.ContextState
			c.ResumePC = r.i64()
			c.Top = r.i64()
			c.Bottom = r.i64()
			for k := range c.Regs {
				c.Regs[k] = r.i64()
			}
			ws.Ready = append(ws.Ready, c)
		}
		st.Workers = append(st.Workers, ws)
	}
	nt := r.count(8 * (4 + isa.NumCalleeSave))
	for i := 0; i < nt; i++ {
		var t machine.ThunkState
		t.PC = r.i64()
		t.ResumePC = r.i64()
		t.Callsite = r.i64()
		t.IsFork = r.boolean()
		t.FP = r.i64()
		for k := range t.Regs {
			t.Regs[k] = r.i64()
		}
		st.Thunks = append(st.Thunks, t)
	}
	st.NextThunk = r.i64()
	st.Rng = r.u64()
	return st
}

func decodeStats(r *reader, st *machine.Stats) {
	st.Instrs = r.i64()
	st.Calls = r.i64()
	st.Suspends = r.i64()
	st.Restarts = r.i64()
	st.Exports = r.i64()
	st.Shrinks = r.i64()
	st.Extends = r.i64()
	st.StackHighWater = r.i64()
	st.Segments = r.i64()
	st.SegmentsLive = r.i64()
}

func decodeSched(r *reader) *sched.SchedState {
	st := &sched.SchedState{}
	n := r.count(8)
	for i := 0; i < n; i++ {
		st.Status = append(st.Status, int(r.i64()))
	}
	st.WakeAt = r.i64s()
	n = r.count(8 * 2)
	for i := 0; i < n; i++ {
		st.Reqs = append(st.Reqs, sched.ReqState{Thief: int(r.i64()), PostedAt: r.i64()})
	}
	n = r.count(1)
	for i := 0; i < n; i++ {
		st.Spurious = append(st.Spurious, r.boolean())
	}
	st.Rng = r.u64()
	st.Picks = r.i64()
	st.Steals = r.i64()
	st.Attempts = r.i64()
	st.Rejects = r.i64()
	return st
}

func decodeNamed(r *reader) []obs.NamedValue {
	n := r.count(8 + 8)
	var out []obs.NamedValue
	for i := 0; i < n; i++ {
		out = append(out, obs.NamedValue{Name: r.str(), V: r.i64()})
	}
	return out
}

func decodeObs(r *reader) *obs.CollectorState {
	st := &obs.CollectorState{
		SamplePeriod: r.i64(),
		Makespan:     r.i64(),
		Samples:      r.i64(),
	}
	n := r.count(8 * (int(obs.NumPhases) + 6))
	for i := 0; i < n; i++ {
		var o obs.WorkerObsState
		o.ID = int(r.i64())
		for j := range o.Phase {
			o.Phase[j] = r.i64()
		}
		o.Total = r.i64()
		o.Period = r.i64()
		o.NextSample = r.i64()
		o.Samples = r.i64()
		o.Attributed = r.i64()
		st.Workers = append(st.Workers, o)
	}
	n = r.count(8*4 + 1)
	for i := 0; i < n; i++ {
		e := obs.Event{
			Ts:     r.i64(),
			Dur:    r.i64(),
			Worker: int(r.i64()),
			Kind:   r.u8(),
			Name:   r.str(),
		}
		na := r.count(8 + 8)
		for j := 0; j < na; j++ {
			e.Args = append(e.Args, obs.Arg{K: r.str(), V: r.i64()})
		}
		st.Events = append(st.Events, e)
	}
	st.Flat = decodeNamed(r)
	st.Cum = decodeNamed(r)
	st.Counters = decodeNamed(r)
	st.Gauges = decodeNamed(r)
	n = r.count(8 * 6)
	for i := 0; i < n; i++ {
		st.Hists = append(st.Hists, obs.NamedHist{
			Name:    r.str(),
			Count:   r.i64(),
			Sum:     r.i64(),
			Min:     r.i64(),
			Max:     r.i64(),
			Buckets: r.i64s(),
		})
	}
	return st
}
