// Command stserve runs the job-execution service: an HTTP+JSON API that
// accepts StackThreads/Cilk simulation jobs, multiplexes them across host
// cores, caches deterministic results, and drains gracefully on SIGTERM.
//
// Usage:
//
//	stserve -addr :8135 -hostprocs 4 -queue 64 -cache 256
//	stserve -watchdog 30s -breaker-threshold 8         # hardened serving
//	stserve -fault serve-panic:7                       # chaos drill
//	stserve -log text                                  # human-readable logs
//	stserve -checkpoint-dir /var/lib/stserve           # durable checkpoints
//	stserve -node 10.0.0.1:8135 -peers 10.0.0.2:8135,10.0.0.3:8135
//	                                                   # 3-node cluster member
//
// -checkpoint-dir makes long jobs crash-safe: the server periodically
// writes each running job's continuation (a complete machine+scheduler
// snapshot captured at a pick boundary) to the directory and, after a
// restart, resumes a resubmitted job from its last checkpoint instead of
// recomputing — byte-identically.
//
// -node (with -peers) joins a cluster: nodes gossip membership over HTTP,
// route submissions to the consistent-hash owner of each job's canonical
// tuple, and — with -steal — idle nodes adopt suspended continuations from
// busy peers and post the finished output back. Point -checkpoint-dir at
// shared storage and a job checkpointed by a crashed node resumes on any
// survivor.
//
// API (see internal/server):
//
//	POST   /jobs        {"app":"fib","mode":"st","workers":8,"seed":1,"wait":true}
//	                    an X-Trace-Id header joins the job to the client's
//	                    end-to-end trace (minted when absent, always echoed)
//	GET    /jobs/{id}   status; ?wait=1 blocks until terminal
//	DELETE /jobs/{id}   cancel
//	GET    /metrics     metrics registry snapshot (?format=prom for
//	                    Prometheus text exposition)
//	GET    /debug/jobs  live in-flight jobs: phase, progress, queue depth,
//	                    breaker state, engine contention
//	GET    /healthz     liveness + draining flag
//
// Serving events are logged structured (JSON by default, -log text for
// human-readable, -log off to silence) to stderr, each carrying the job's
// trace_id. -spans bounds the in-memory ring of wall-clock serving spans
// backing the two-clock trace export.
//
// On SIGTERM/SIGINT the server stops admitting (503), finishes every
// accepted job, flushes a final metrics snapshot to stdout, and exits 0.
// A second SIGTERM/SIGINT while the drain is in flight forces an
// immediate exit with a nonzero status — the escape hatch when a drain
// is stuck behind a wedged job.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/hostpar"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/snapshot"
)

func main() {
	var (
		addr      = flag.String("addr", ":8135", "listen address")
		queue     = flag.Int("queue", 64, "admission queue bound (full = HTTP 429)")
		hostprocs = flag.Int("hostprocs", 0, "executor slots: jobs running concurrently (0 = all cores)")
		engine    = flag.String("engine", "", "default engine for jobs that don't pick one: sequential, parallel or throughput (empty = ST_ENGINE, then sequential)")
		cache     = flag.Int("cache", 256, "result cache entries (negative disables)")
		timeout   = flag.Duration("timeout", 0, "default per-job execution deadline (0 = none)")
		maxcycles = flag.Int64("maxcycles", 0, "server-wide work-cycle ceiling per job (0 = none)")
		watchdog  = flag.Duration("watchdog", 0, "per-job wall-clock bound; a trip fails the job as \"timeout\" (0 = none)")
		faultFlag = flag.String("fault", "", "serving fault plan, name[:seed]: injects executor panics/latency for chaos drills")
		bthresh   = flag.Int("breaker-threshold", 0, "host failures in the window that open the load-shedding breaker (0 = default 8, negative disables)")
		bwindow   = flag.Duration("breaker-window", 0, "sliding window the breaker counts failures over (0 = default 10s)")
		bcooldown = flag.Duration("breaker-cooldown", 0, "how long an open breaker sheds before probing (0 = default 2s)")
		logMode   = flag.String("log", "json", "structured serving log to stderr: json, text or off")
		spans     = flag.Int("spans", 0, "server-wide host-span ring bound (0 = default 4096, negative disables)")

		ckptDir    = flag.String("checkpoint-dir", "", "directory for durable job checkpoints (empty = checkpointing off)")
		ckptCycles = flag.Int64("checkpoint-cycles", 0, "virtual cycles between periodic checkpoints (0 = default 2M)")
		nodeAddr   = flag.String("node", "", "advertised host:port joining this server to a cluster (empty = standalone)")
		peersFlag  = flag.String("peers", "", "comma-separated peer host:port seeds for the cluster")
		steal      = flag.Bool("steal", true, "with -node: adopt suspended continuations from busy peers when idle")
		gossipMs   = flag.Int("gossip-ms", 0, "with -node: membership gossip period in ms (0 = default 500)")
		stealTTL   = flag.Duration("steal-ttl", 0, "claim lifetime for stolen continuations (0 = default 10s)")
	)
	flag.Parse()

	plan, err := fault.ParsePlan(*faultFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stserve:", err)
		os.Exit(2)
	}
	if _, err := core.ParseEngine(*engine); err != nil {
		fmt.Fprintln(os.Stderr, "stserve:", err)
		os.Exit(2)
	}
	var logger *slog.Logger
	switch *logMode {
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "off":
	default:
		fmt.Fprintf(os.Stderr, "stserve: -log %q: want json, text or off\n", *logMode)
		os.Exit(2)
	}
	var hostRec *obs.HostRecorder
	if *spans >= 0 {
		hostRec = obs.NewHostRecorder(*spans)
	}
	var store snapshot.Store
	if *ckptDir != "" {
		ds, err := snapshot.NewDirStore(*ckptDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stserve:", err)
			os.Exit(2)
		}
		store = ds
	}
	if *peersFlag != "" && *nodeAddr == "" {
		fmt.Fprintln(os.Stderr, "stserve: -peers requires -node (this node's advertised host:port)")
		os.Exit(2)
	}
	s := server.New(server.Config{
		QueueBound:       *queue,
		HostProcs:        *hostprocs,
		DefaultEngine:    *engine,
		CacheEntries:     *cache,
		DefaultTimeout:   *timeout,
		MaxWorkCycles:    *maxcycles,
		Watchdog:         *watchdog,
		Fault:            fault.New(plan),
		BreakerThreshold: *bthresh,
		BreakerWindow:    *bwindow,
		BreakerCooldown:  *bcooldown,
		HostSpans:        hostRec,
		Log:              logger,
		Checkpoints:      store,
		CheckpointCycles: *ckptCycles,
		StealTTL:         *stealTTL,
	})
	handler := s.Handler()
	var node *cluster.Node
	if *nodeAddr != "" {
		var peers []string
		for _, p := range strings.Split(*peersFlag, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
		n, err := cluster.New(s, cluster.Config{
			Self:        *nodeAddr,
			Peers:       peers,
			GossipEvery: time.Duration(*gossipMs) * time.Millisecond,
			Steal:       *steal,
			Log:         logger,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "stserve:", err)
			os.Exit(2)
		}
		node = n
		handler = n.Handler()
		n.Start()
	}
	hs := &http.Server{Addr: *addr, Handler: handler}

	// Buffer two signals: the first starts the drain, the second (while
	// draining) forces an immediate exit.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	shutdownDone := make(chan struct{})
	go func() {
		sig := <-sigs
		fmt.Printf("stserve: %v: draining (no new admissions, finishing accepted jobs)\n", sig)
		go func() {
			sig2 := <-sigs
			fmt.Fprintf(os.Stderr, "stserve: %v during drain: forcing immediate exit\n", sig2)
			os.Exit(1)
		}()
		if node != nil {
			// Stop gossiping and stealing before the drain so peers route
			// around this node and no new continuation is adopted mid-exit.
			node.Close()
		}
		s.Drain()
		if b, err := s.Metrics().MarshalJSON(); err == nil {
			fmt.Printf("stserve: final metrics:\n%s\n", b)
		}
		st := s.Stats()
		fmt.Printf("stserve: drained: accepted=%d completed=%d failed=%d canceled=%d timeout=%d shed=%d executor_restarts=%d watchdog_trips=%d cache_hits=%d cache_misses=%d rejected=%d\n",
			st.Accepted, st.Completed, st.Failed, st.Canceled, st.Timeout,
			st.Shed, st.ExecutorRestarts, st.WatchdogTrips,
			st.CacheHits, st.CacheMisses, st.RejectedQueueFull+st.RejectedDraining)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
		close(shutdownDone)
	}()

	fmt.Printf("stserve: listening on %s (executors=%d queue=%d cache=%d)\n",
		*addr, hostpar.Procs(*hostprocs), *queue, *cache)
	if node != nil {
		fmt.Printf("stserve: cluster node %s (peers=%s steal=%v)\n", *nodeAddr, *peersFlag, *steal)
	}
	if *ckptDir != "" {
		fmt.Printf("stserve: checkpointing to %s\n", *ckptDir)
	}
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "stserve:", err)
		os.Exit(1)
	}
	<-shutdownDone
}
