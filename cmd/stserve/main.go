// Command stserve runs the job-execution service: an HTTP+JSON API that
// accepts StackThreads/Cilk simulation jobs, multiplexes them across host
// cores, caches deterministic results, and drains gracefully on SIGTERM.
//
// Usage:
//
//	stserve -addr :8135 -hostprocs 4 -queue 64 -cache 256
//
// API (see internal/server):
//
//	POST   /jobs        {"app":"fib","mode":"st","workers":8,"seed":1,"wait":true}
//	GET    /jobs/{id}   status; ?wait=1 blocks until terminal
//	DELETE /jobs/{id}   cancel
//	GET    /metrics     metrics registry snapshot
//	GET    /healthz     liveness
//
// On SIGTERM/SIGINT the server stops admitting (503), finishes every
// accepted job, flushes a final metrics snapshot to stdout, and exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/hostpar"
	"repro/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8135", "listen address")
		queue     = flag.Int("queue", 64, "admission queue bound (full = HTTP 429)")
		hostprocs = flag.Int("hostprocs", 0, "executor slots: jobs running concurrently (0 = all cores)")
		cache     = flag.Int("cache", 256, "result cache entries (negative disables)")
		timeout   = flag.Duration("timeout", 0, "default per-job execution deadline (0 = none)")
		maxcycles = flag.Int64("maxcycles", 0, "server-wide work-cycle ceiling per job (0 = none)")
	)
	flag.Parse()

	s := server.New(server.Config{
		QueueBound:     *queue,
		HostProcs:      *hostprocs,
		CacheEntries:   *cache,
		DefaultTimeout: *timeout,
		MaxWorkCycles:  *maxcycles,
	})
	hs := &http.Server{Addr: *addr, Handler: s.Handler()}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	shutdownDone := make(chan struct{})
	go func() {
		sig := <-sigs
		fmt.Printf("stserve: %v: draining (no new admissions, finishing accepted jobs)\n", sig)
		s.Drain()
		if b, err := s.Metrics().MarshalJSON(); err == nil {
			fmt.Printf("stserve: final metrics:\n%s\n", b)
		}
		st := s.Stats()
		fmt.Printf("stserve: drained: accepted=%d completed=%d failed=%d canceled=%d timeout=%d cache_hits=%d cache_misses=%d rejected=%d\n",
			st.Accepted, st.Completed, st.Failed, st.Canceled, st.Timeout,
			st.CacheHits, st.CacheMisses, st.RejectedQueueFull+st.RejectedDraining)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
		close(shutdownDone)
	}()

	fmt.Printf("stserve: listening on %s (executors=%d queue=%d cache=%d)\n",
		*addr, hostpar.Procs(*hostprocs), *queue, *cache)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "stserve:", err)
		os.Exit(1)
	}
	<-shutdownDone
}
