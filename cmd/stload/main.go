// Command stload is a closed-loop load generator for stserve: at each
// offered concurrency level it keeps that many synchronous requests in
// flight (each client submits with "wait":true and immediately re-submits
// when the response lands), then reports throughput and latency
// percentiles per level.
//
// Requests go through internal/client, so backpressure (429) and load
// shedding (503) are retried with exponential backoff and jitter, always
// honoring the server's Retry-After header as the floor on the wait.
//
// Usage:
//
//	stload -addr http://127.0.0.1:8135 -app fib -workers 8 -c 1,2,4 -n 100
//	stload -app fib,cilksort -seeds 0 -n 200      # mixed, all-cold workload
//	stload -app fib -seeds 1 -n 200               # one tuple: cache-hit path
//	stload -app fib -n 20 -json                   # machine-readable report
//	stload -app fib -n 20 -trace out.json         # two-clock Chrome trace
//	stload -targets host1:8135,host2:8135,host3:8135 -n 300
//	                                              # multi-node cluster load
//
// -targets spreads the load across several stserve nodes round-robin, with
// per-node latency/throughput breakdowns in the report. A request whose
// node is unreachable fails over to the next target, so a node killed
// mid-run costs a retry, not a lost request. Targets may be bare
// host:port (http:// is assumed).
//
// -seeds S cycles seeds 1..S across requests (S=1 repeats one canonical
// tuple, measuring the cache-hit path; S=0 gives every request a unique
// seed, measuring cold runs).
//
// -trace writes a single Chrome trace_event file joining both clock
// domains: the host wall-clock serving spans (client request/backoff, and
// the server's enqueue-wait/cache-probe/execute spans returned on each
// job) on pid 0, and the deterministic virtual-time machine trace of the
// first -tracejobs jobs per level on pid 1+, correlated by trace_id.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/obs"
)

type jobView struct {
	ID        string          `json:"id"`
	TraceID   string          `json:"trace_id"`
	State     string          `json:"state"`
	Cache     string          `json:"cache"`
	Error     string          `json:"error"`
	Failure   string          `json:"failure"`
	HostSpans []obs.HostSpan  `json:"host_spans"`
	Trace     json.RawMessage `json:"trace"`
}

type levelStats struct {
	mu        sync.Mutex
	hist      *obs.Histogram // request latency, µs
	hits      int64
	errors    int64
	spans     []obs.HostSpan // server-side spans returned on each job
	jobTraces []obs.JobTrace // virtual traces of the first -tracejobs jobs
	retried   atomic.Int64   // 429/503/transport retries (client OnRetry hook)

	// Per-target breakdown (multi-node runs); indexed like the target list.
	nodes []nodeStats
}

// nodeStats is one target's share of a level (guarded by levelStats.mu).
type nodeStats struct {
	hist      obs.Histogram // latency of requests this node served, µs
	errors    int64         // requests that failed against this node
	hits      int64
	failovers int64 // requests that left this node for the next target
}

// nodeResult is one target's machine-readable breakdown (-json).
type nodeResult struct {
	Target        string            `json:"target"`
	Completed     int64             `json:"completed"`
	Errors        int64             `json:"errors"`
	Failovers     int64             `json:"failovers"`
	CacheHits     int64             `json:"cache_hits"`
	ThroughputRPS float64           `json:"throughput_rps"`
	PercentilesUs obs.PercentileSet `json:"percentiles_us"`
}

// levelResult is one concurrency level's machine-readable report (-json).
type levelResult struct {
	Concurrency   int               `json:"concurrency"`
	Completed     int64             `json:"completed"`
	Errors        int64             `json:"errors"`
	Retries       int64             `json:"retries"`
	CacheHits     int64             `json:"cache_hits"`
	ElapsedUs     int64             `json:"elapsed_us"`
	ThroughputRPS float64           `json:"throughput_rps"`
	PercentilesUs obs.PercentileSet `json:"percentiles_us"`
	LatencyUs     obs.HistSnapshot  `json:"latency_us"`
	Nodes         []nodeResult      `json:"nodes,omitempty"`
}

// us renders a µs-valued percentile as a rounded duration for the table.
func us(v int64) time.Duration {
	return (time.Duration(v) * time.Microsecond).Round(time.Microsecond)
}

func main() {
	var (
		addr      = flag.String("addr", "http://127.0.0.1:8135", "stserve base URL")
		targets   = flag.String("targets", "", "comma-separated stserve base URLs or host:port; spreads load round-robin with per-node breakdowns and failover (overrides -addr)")
		appsFlag  = flag.String("app", "fib", "comma-separated benchmark names, cycled per request")
		mode      = flag.String("mode", "st", "execution mode: seq, st, cilk")
		workers   = flag.Int("workers", 4, "virtual workers per job")
		full      = flag.Bool("full", false, "paper-scale inputs")
		engine    = flag.String("engine", "", "host engine per job: sequential or parallel")
		levels    = flag.String("c", "1,2,4", "comma-separated offered concurrency levels")
		n         = flag.Int("n", 100, "requests per level")
		seeds     = flag.Uint64("seeds", 1, "cycle seeds 1..N (1 = one tuple; 0 = unique seed per request)")
		priority  = flag.Int("priority", 0, "job priority")
		nocache   = flag.Bool("nocache", false, "bypass the server's result cache")
		maxcycles = flag.Int64("maxcycles", 0, "per-job work-cycle budget")
		faultPlan = flag.String("fault", "", "per-job fault plan, name[:seed] (part of the canonical tuple)")
		audit     = flag.Int("audit", 0, "per-job invariant-audit cadence in scheduler picks (0 = off)")
		retries   = flag.Int("retries", 6, "attempts per request before giving up (429/503/transport)")
		timeout   = flag.Duration("timeout", 5*time.Minute, "HTTP client timeout per request")
		jsonOut   = flag.Bool("json", false, "emit one machine-readable JSON report (histogram + percentiles per level)")
		traceOut  = flag.String("trace", "", "write a two-clock Chrome trace (host + virtual, joined by trace_id) to this file")
		traceJobs = flag.Int("tracejobs", 4, "with -trace: fetch the virtual-time trace of the first N jobs per level")
	)
	flag.Parse()

	appList := strings.Split(*appsFlag, ",")
	targetList := []string{*addr}
	if *targets != "" {
		targetList = targetList[:0]
		for _, tgt := range strings.Split(*targets, ",") {
			if tgt = strings.TrimSpace(tgt); tgt == "" {
				continue
			}
			if !strings.Contains(tgt, "://") {
				tgt = "http://" + tgt
			}
			targetList = append(targetList, tgt)
		}
		if len(targetList) == 0 {
			fmt.Fprintln(os.Stderr, "stload: -targets named no targets")
			os.Exit(2)
		}
	}
	var levelList []int
	for _, s := range strings.Split(*levels, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "stload: bad concurrency level %q\n", s)
			os.Exit(2)
		}
		levelList = append(levelList, v)
	}

	// With -trace, the client's own request/backoff spans land in this
	// recorder under the same trace ids the server sees.
	var hostRec *obs.HostRecorder
	if *traceOut != "" {
		hostRec = obs.NewHostRecorder(0)
	}

	var totalCompleted int64
	var results []levelResult
	var allSpans []obs.HostSpan
	var allTraces []obs.JobTrace
	if !*jsonOut {
		fmt.Printf("%-6s %10s %8s %8s %8s %12s %10s %10s %10s %10s\n",
			"conc", "completed", "errors", "retries", "hits", "thr req/s", "p50", "p90", "p99", "max")
	}
	for li, c := range levelList {
		st := &levelStats{hist: &obs.Histogram{}, nodes: make([]nodeStats, len(targetList))}
		// One client per target per level so the retry counter and jitter
		// stream are the level's own and backoff state never crosses nodes.
		clients := make([]*client.Client, len(targetList))
		for i, tgt := range targetList {
			clients[i] = client.New(client.Config{
				BaseURL:     tgt,
				HTTPClient:  &http.Client{Timeout: *timeout},
				MaxAttempts: *retries,
				OnRetry:     func(client.RetryInfo) { st.retried.Add(1) },
				Host:        hostRec,
			})
		}
		var seq atomic.Int64
		start := time.Now()
		var wg sync.WaitGroup
		for g := 0; g < c; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					k := seq.Add(1) - 1
					if k >= int64(*n) {
						return
					}
					seed := uint64(k) + 1
					if *seeds > 0 {
						seed = uint64(k)%*seeds + 1
					}
					req := map[string]any{
						"app":     appList[int(k)%len(appList)],
						"mode":    *mode,
						"workers": *workers,
						"seed":    seed,
						"wait":    true,
					}
					if *full {
						req["full"] = true
					}
					if *engine != "" {
						req["engine"] = *engine
					}
					if *priority != 0 {
						req["priority"] = *priority
					}
					if *nocache {
						req["no_cache"] = true
					}
					if *maxcycles > 0 {
						req["max_work_cycles"] = *maxcycles
					}
					if *faultPlan != "" {
						req["fault_plan"] = *faultPlan
					}
					if *audit > 0 {
						req["audit"] = *audit
					}
					// Tracing: mint the trace id client-side so both clock
					// domains carry it; ask the first -tracejobs jobs for
					// their virtual-time trace artifact.
					traceID := ""
					wantTrace := false
					if *traceOut != "" {
						traceID = fmt.Sprintf("lt-%d-%d", li, k)
						wantTrace = k < int64(*traceJobs)
						if wantTrace {
							req["trace"] = true
						}
					}
					// Round-robin across targets, failing over to the next
					// node when one is unreachable: a node killed mid-run
					// costs a retry, never a lost request.
					var view jobView
					var err error
					served := int(k) % len(targetList)
					t0 := time.Now()
					for off := 0; off < len(targetList); off++ {
						idx := (int(k) + off) % len(targetList)
						view = jobView{}
						err = clients[idx].PostJSONTrace(context.Background(), "/jobs", traceID, req, &view)
						if err == nil {
							served = idx
							break
						}
						st.mu.Lock()
						if off < len(targetList)-1 {
							st.nodes[idx].failovers++
						} else {
							st.nodes[idx].errors++
						}
						st.mu.Unlock()
					}
					lat := time.Since(t0)
					st.mu.Lock()
					switch {
					case err != nil:
						st.errors++
					case view.State != "done":
						st.errors++
						st.nodes[served].errors++
					default:
						st.hist.Observe(lat.Microseconds())
						st.nodes[served].hist.Observe(lat.Microseconds())
						if view.Cache == "hit" {
							st.hits++
							st.nodes[served].hits++
						}
						if *traceOut != "" {
							st.spans = append(st.spans, view.HostSpans...)
							if wantTrace && len(view.Trace) > 0 {
								st.jobTraces = append(st.jobTraces, obs.JobTrace{
									TraceID: view.TraceID, Job: view.ID, Trace: view.Trace,
								})
							}
						}
					}
					st.mu.Unlock()
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)

		completed := st.hist.Count()
		totalCompleted += completed
		thr := float64(completed) / elapsed.Seconds()
		pcts := st.hist.Percentiles()
		var nodes []nodeResult
		if len(targetList) > 1 {
			for i, tgt := range targetList {
				ns := &st.nodes[i]
				nodes = append(nodes, nodeResult{
					Target:        tgt,
					Completed:     ns.hist.Count(),
					Errors:        ns.errors,
					Failovers:     ns.failovers,
					CacheHits:     ns.hits,
					ThroughputRPS: float64(ns.hist.Count()) / elapsed.Seconds(),
					PercentilesUs: ns.hist.Percentiles(),
				})
			}
		}
		if *jsonOut {
			reg := obs.NewRegistry()
			*reg.Histogram("latency_us") = *st.hist
			results = append(results, levelResult{
				Concurrency:   c,
				Completed:     completed,
				Errors:        st.errors,
				Retries:       st.retried.Load(),
				CacheHits:     st.hits,
				ElapsedUs:     elapsed.Microseconds(),
				ThroughputRPS: thr,
				PercentilesUs: pcts,
				LatencyUs:     reg.Snapshot().Histograms["latency_us"],
				Nodes:         nodes,
			})
		} else {
			fmt.Printf("c=%-4d %10d %8d %8d %8d %12.1f %10v %10v %10v %10v\n",
				c, completed, st.errors, st.retried.Load(), st.hits, thr,
				us(pcts.P50), us(pcts.P90), us(pcts.P99), us(pcts.Max))
			for _, nr := range nodes {
				fmt.Printf("  %-28s %8d %8d %8d %12.1f %10v %10v %10v\n",
					nr.Target, nr.Completed, nr.Errors+nr.Failovers, nr.CacheHits,
					nr.ThroughputRPS, us(nr.PercentilesUs.P50),
					us(nr.PercentilesUs.P90), us(nr.PercentilesUs.P99))
			}
		}

		if *traceOut != "" {
			allSpans = append(allSpans, st.spans...)
			allTraces = append(allTraces, st.jobTraces...)
		}
	}
	if *traceOut != "" {
		// Client spans (request, retry-backoff) from the shared recorder,
		// server spans returned on each job, and the collected virtual
		// traces, merged into one two-clock file.
		allSpans = append(allSpans, hostRec.Spans()...)
		if err := writeTwoClock(*traceOut, allSpans, allTraces); err != nil {
			fmt.Fprintf(os.Stderr, "stload: %v\n", err)
			os.Exit(1)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]any{"levels": results, "total_completed": totalCompleted}); err != nil {
			fmt.Fprintf(os.Stderr, "stload: %v\n", err)
			os.Exit(1)
		}
	} else {
		fmt.Printf("total completed=%d\n", totalCompleted)
	}
	if totalCompleted == 0 {
		os.Exit(1)
	}
}

// writeTwoClock writes the merged two-clock Chrome trace file.
func writeTwoClock(path string, host []obs.HostSpan, jobs []obs.JobTrace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteTwoClockTrace(f, host, jobs); err != nil {
		f.Close()
		return fmt.Errorf("write two-clock trace: %w", err)
	}
	return f.Close()
}
