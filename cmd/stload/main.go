// Command stload is a closed-loop load generator for stserve: at each
// offered concurrency level it keeps that many synchronous requests in
// flight (each client submits with "wait":true and immediately re-submits
// when the response lands), then reports throughput and latency
// percentiles per level.
//
// Requests go through internal/client, so backpressure (429) and load
// shedding (503) are retried with exponential backoff and jitter, always
// honoring the server's Retry-After header as the floor on the wait.
//
// Usage:
//
//	stload -addr http://127.0.0.1:8135 -app fib -workers 8 -c 1,2,4 -n 100
//	stload -app fib,cilksort -seeds 0 -n 200      # mixed, all-cold workload
//	stload -app fib -seeds 1 -n 200               # one tuple: cache-hit path
//
// -seeds S cycles seeds 1..S across requests (S=1 repeats one canonical
// tuple, measuring the cache-hit path; S=0 gives every request a unique
// seed, measuring cold runs).
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
)

type jobView struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Cache   string `json:"cache"`
	Error   string `json:"error"`
	Failure string `json:"failure"`
}

type levelStats struct {
	mu        sync.Mutex
	latencies []time.Duration
	hits      int64
	errors    int64
	retried   atomic.Int64 // 429/503/transport retries (client OnRetry hook)
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func main() {
	var (
		addr      = flag.String("addr", "http://127.0.0.1:8135", "stserve base URL")
		appsFlag  = flag.String("app", "fib", "comma-separated benchmark names, cycled per request")
		mode      = flag.String("mode", "st", "execution mode: seq, st, cilk")
		workers   = flag.Int("workers", 4, "virtual workers per job")
		full      = flag.Bool("full", false, "paper-scale inputs")
		engine    = flag.String("engine", "", "host engine per job: sequential or parallel")
		levels    = flag.String("c", "1,2,4", "comma-separated offered concurrency levels")
		n         = flag.Int("n", 100, "requests per level")
		seeds     = flag.Uint64("seeds", 1, "cycle seeds 1..N (1 = one tuple; 0 = unique seed per request)")
		priority  = flag.Int("priority", 0, "job priority")
		nocache   = flag.Bool("nocache", false, "bypass the server's result cache")
		maxcycles = flag.Int64("maxcycles", 0, "per-job work-cycle budget")
		faultPlan = flag.String("fault", "", "per-job fault plan, name[:seed] (part of the canonical tuple)")
		audit     = flag.Int("audit", 0, "per-job invariant-audit cadence in scheduler picks (0 = off)")
		retries   = flag.Int("retries", 6, "attempts per request before giving up (429/503/transport)")
		timeout   = flag.Duration("timeout", 5*time.Minute, "HTTP client timeout per request")
	)
	flag.Parse()

	appList := strings.Split(*appsFlag, ",")
	var levelList []int
	for _, s := range strings.Split(*levels, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "stload: bad concurrency level %q\n", s)
			os.Exit(2)
		}
		levelList = append(levelList, v)
	}

	var totalCompleted int64
	fmt.Printf("%-6s %10s %8s %8s %8s %12s %10s %10s %10s %10s\n",
		"conc", "completed", "errors", "retries", "hits", "thr req/s", "p50", "p90", "p99", "max")
	for _, c := range levelList {
		st := &levelStats{}
		// One client per level so the retry counter and jitter stream are
		// the level's own.
		cl := client.New(client.Config{
			BaseURL:     *addr,
			HTTPClient:  &http.Client{Timeout: *timeout},
			MaxAttempts: *retries,
			OnRetry:     func(client.RetryInfo) { st.retried.Add(1) },
		})
		var seq atomic.Int64
		start := time.Now()
		var wg sync.WaitGroup
		for g := 0; g < c; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					k := seq.Add(1) - 1
					if k >= int64(*n) {
						return
					}
					seed := uint64(k) + 1
					if *seeds > 0 {
						seed = uint64(k)%*seeds + 1
					}
					req := map[string]any{
						"app":     appList[int(k)%len(appList)],
						"mode":    *mode,
						"workers": *workers,
						"seed":    seed,
						"wait":    true,
					}
					if *full {
						req["full"] = true
					}
					if *engine != "" {
						req["engine"] = *engine
					}
					if *priority != 0 {
						req["priority"] = *priority
					}
					if *nocache {
						req["no_cache"] = true
					}
					if *maxcycles > 0 {
						req["max_work_cycles"] = *maxcycles
					}
					if *faultPlan != "" {
						req["fault_plan"] = *faultPlan
					}
					if *audit > 0 {
						req["audit"] = *audit
					}
					var view jobView
					t0 := time.Now()
					err := cl.PostJSON(context.Background(), "/jobs", req, &view)
					lat := time.Since(t0)
					st.mu.Lock()
					switch {
					case err != nil:
						st.errors++
					case view.State != "done":
						st.errors++
					default:
						st.latencies = append(st.latencies, lat)
						if view.Cache == "hit" {
							st.hits++
						}
					}
					st.mu.Unlock()
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)

		sort.Slice(st.latencies, func(i, j int) bool { return st.latencies[i] < st.latencies[j] })
		completed := len(st.latencies)
		totalCompleted += int64(completed)
		thr := float64(completed) / elapsed.Seconds()
		fmt.Printf("c=%-4d %10d %8d %8d %8d %12.1f %10v %10v %10v %10v\n",
			c, completed, st.errors, st.retried.Load(), st.hits, thr,
			percentile(st.latencies, 0.50).Round(time.Microsecond),
			percentile(st.latencies, 0.90).Round(time.Microsecond),
			percentile(st.latencies, 0.99).Round(time.Microsecond),
			percentile(st.latencies, 1.00).Round(time.Microsecond))
	}
	fmt.Printf("total completed=%d\n", totalCompleted)
	if totalCompleted == 0 {
		os.Exit(1)
	}
}
