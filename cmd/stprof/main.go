// Command stprof runs one benchmark with the observability layer attached
// and prints a profile of where the virtual cycles went: the phase breakdown
// of the paper's cost decomposition (Section 8), the sampling profiler's top
// table, and the per-worker utilization report. It can also export the
// metrics registry as JSON and the event stream as a Chrome trace loadable
// in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Usage:
//
//	stprof -app fib -workers 4
//	stprof -app cilksort -mode cilk -workers 8 -top 5
//	stprof -app fib -workers 4 -chrome trace.json -metrics metrics.json
//	stprof -app fib -workers 4 -prom metrics.prom
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/obs"
)

func main() {
	var (
		app     = flag.String("app", "fib", "benchmark name")
		mode    = flag.String("mode", "st", "execution mode: seq, st, cilk")
		workers = flag.Int("workers", 4, "worker (virtual CPU) count")
		seed    = flag.Uint64("seed", 1, "scheduler seed")
		full    = flag.Bool("full", false, "paper-scale input")
		sample  = flag.Int64("sample", obs.DefaultSamplePeriod, "profiler sample period in virtual cycles")
		top     = flag.Int("top", 10, "rows in the profile top table (0 = all)")
		chrome  = flag.String("chrome", "", "write Chrome trace_event JSON to this file")
		metrics = flag.String("metrics", "", "write the metrics registry snapshot to this file")
		prom    = flag.String("prom", "", "write the metrics registry in Prometheus text exposition format to this file")
	)
	flag.Parse()

	sc := figures.Quick
	if *full {
		sc = figures.Full
	}
	variant := apps.ST
	c := obs.New()
	c.SamplePeriod = *sample
	cfg := core.Config{Workers: *workers, Seed: *seed, Obs: c}
	switch *mode {
	case "seq":
		variant = apps.Seq
		cfg.Mode = core.Sequential
	case "st":
		cfg.Mode = core.StackThreads
	case "cilk":
		cfg.Mode = core.Cilk
	default:
		fmt.Fprintf(os.Stderr, "stprof: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	w, err := figures.Workload(*app, sc, variant)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stprof:", err)
		os.Exit(2)
	}
	res, err := core.Run(w, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stprof:", err)
		os.Exit(1)
	}

	fmt.Printf("app=%s mode=%s workers=%d seed=%d: result %d in %d cycles (%d work, %d steals)\n\n",
		*app, *mode, *workers, *seed, res.RV, res.Time, res.WorkCycles, res.Steals)
	c.WriteReport(os.Stdout)
	fmt.Println()
	c.WriteTop(os.Stdout, *top)

	if *metrics != "" {
		b, err := c.Metrics.MarshalJSON()
		if err == nil {
			err = os.WriteFile(*metrics, append(b, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "stprof: metrics:", err)
			os.Exit(1)
		}
		fmt.Printf("\nmetrics snapshot written to %s\n", *metrics)
	}
	if *prom != "" {
		f, err := os.Create(*prom)
		if err == nil {
			err = obs.WritePrometheus(f, c.Metrics.Snapshot(), "st")
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "stprof: prom:", err)
			os.Exit(1)
		}
		fmt.Printf("prometheus exposition written to %s\n", *prom)
	}
	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err == nil {
			err = c.WriteChromeTrace(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "stprof: chrome trace:", err)
			os.Exit(1)
		}
		fmt.Printf("chrome trace written to %s (load in ui.perfetto.dev)\n", *chrome)
	}
}
