// Command stbench regenerates the paper's evaluation figures (Section 8).
//
// Usage:
//
//	stbench -fig 17          # SPEC overhead on the SPARC model
//	stbench -fig 21 -full    # uniprocessor comparison at paper-scale sizes
//	stbench -fig 22 -bench fib,cilksort
//	stbench -all             # everything, quick scale
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/hostpar"
	"repro/internal/isa"
)

// runHotPath measures raw interpreter speed — host nanoseconds per simulated
// cycle — on the same three single-worker workloads the BenchmarkHotPath
// micro-benchmarks and the bench-hotpath CI gate use (see DESIGN.md §14).
func runHotPath(jit bool) error {
	const rounds = 3
	for _, wl := range []*apps.Workload{
		apps.Fib(22, apps.ST),
		apps.Cilksort(6000, apps.ST, 11),
		apps.NQueens(8, apps.ST),
	} {
		var hostNS, vcycles int64
		for i := 0; i < rounds; i++ {
			t0 := time.Now()
			res, err := core.Run(wl, core.Config{Mode: core.StackThreads, Workers: 1, Seed: 1, JIT: jit})
			if err != nil {
				return fmt.Errorf("%s: %w", wl.Name, err)
			}
			hostNS += time.Since(t0).Nanoseconds()
			vcycles += res.WorkCycles
		}
		fmt.Printf("%-10s %7.2f host-ns/vcycle  (%d vcycles/run, %d rounds)\n",
			wl.Name, float64(hostNS)/float64(vcycles), vcycles/rounds, rounds)
	}
	return nil
}

func main() {
	var (
		fig       = flag.Int("fig", 0, "figure to regenerate (17, 18, 19, 20, 21, 22)")
		all       = flag.Bool("all", false, "regenerate every figure")
		full      = flag.Bool("full", false, "paper-scale inputs (slow); default quick")
		bench     = flag.String("bench", "", "comma-separated benchmark subset for -fig 21/22")
		ablate    = flag.Bool("ablate", false, "run the design-choice ablations instead of a figure")
		engine    = flag.String("engine", "default", "host engine per run: sequential, parallel or throughput")
		hostprocs = flag.Int("hostprocs", 0, "host cores for fanning data points and the parallel engine (0 = all)")
		maxcycles = flag.Int64("maxcycles", 0, "per-run total work-cycle budget (0 = unlimited)")
		audit     = flag.Int64("audit-every", 0, "audit the paper's 3.2 invariants every N scheduler picks inside each run (0 = off)")
		hotpath   = flag.Bool("hotpath", false, "measure interpreter speed (host-ns per virtual cycle) on the hot-path trio")
		jit       = flag.Bool("jit", false, "enable the interpreter trace JIT per run (identical results; host speed only)")
	)
	flag.Parse()

	if *hotpath {
		if err := runHotPath(*jit); err != nil {
			fmt.Fprintln(os.Stderr, "stbench:", err)
			os.Exit(1)
		}
		return
	}

	eng, err := core.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stbench:", err)
		os.Exit(2)
	}
	opts := figures.Opts{HostProcs: *hostprocs, Engine: eng, MaxWorkCycles: *maxcycles, AuditEvery: *audit, JIT: *jit}

	sc := figures.Quick
	if *full {
		sc = figures.Full
	}
	var benches []string
	if *bench != "" {
		benches = strings.Split(*bench, ",")
	}

	run := func(f int) error {
		t0 := time.Now()
		defer func() {
			fmt.Printf("[figure %d: %.2fs host wall-clock on %d cores, engine %v]\n",
				f, time.Since(t0).Seconds(), hostpar.Procs(*hostprocs), eng)
		}()
		switch f {
		case 17, 18, 19, 20:
			cpuName := map[int]string{17: "sparc", 18: "x86", 19: "mips", 20: "alpha"}[f]
			_, err := figures.SpecOverheadsWith(os.Stdout, isa.CostModelByName(cpuName), opts)
			return err
		case 21:
			_, err := figures.UniprocessorWith(os.Stdout, sc, opts)
			return err
		case 22:
			figures.Table2(os.Stdout)
			_, err := figures.ScalingWith(os.Stdout, sc, benches, opts)
			return err
		}
		return fmt.Errorf("unknown figure %d", f)
	}

	if *ablate {
		if _, err := figures.AblateCriteria(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "stbench:", err)
			os.Exit(1)
		}
		fmt.Println()
		if _, err := figures.AblateStealPolicy(os.Stdout, sc); err != nil {
			fmt.Fprintln(os.Stderr, "stbench:", err)
			os.Exit(1)
		}
		fmt.Println()
		if _, err := figures.SpaceBound(os.Stdout, sc); err != nil {
			fmt.Fprintln(os.Stderr, "stbench:", err)
			os.Exit(1)
		}
		fmt.Println()
		if _, err := figures.AblateSegmentedStacks(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "stbench:", err)
			os.Exit(1)
		}
		return
	}

	var figs []int
	switch {
	case *all:
		figs = []int{17, 18, 19, 20, 21, 22}
	case *fig != 0:
		figs = []int{*fig}
	default:
		flag.Usage()
		os.Exit(2)
	}
	for _, f := range figs {
		if err := run(f); err != nil {
			fmt.Fprintln(os.Stderr, "stbench:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
