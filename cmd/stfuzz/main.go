// Command stfuzz sweeps adversarial stack-safety programs over seed ranges:
// every seed becomes a hostile-but-well-formed fork-tree program (see
// internal/advprog) run on all three engines with per-frame canaries armed,
// the Section 3.2 auditor at cadence 1, and a rotating fault plan injected.
// Any caller-integrity or frame-confidentiality break, result divergence or
// canary leak fails the sweep.
//
// Usage:
//
//	stfuzz -seeds 256                         # nightly sweep
//	stfuzz -seed 64                           # one seed, all classes
//	stfuzz -seed 64 -classes epiloguerace     # one seed, one attack class
//	stfuzz -seeds 64 -plan adversarial        # pin the fault plan
//	stfuzz -seeds 256 -corpus adv-corpus      # write failing-seed repros
//
// On failure the offending (seed, classes, plan) triple is shrunk — attack
// classes are dropped one at a time while the failure reproduces — and the
// minimal repro is printed and, with -corpus, written to a repro file.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/advprog"
	"repro/internal/core"
)

func main() {
	var (
		seeds   = flag.Int("seeds", 0, "sweep this many consecutive seeds (with -seed: starting there)")
		seed    = flag.Uint64("seed", 0, "single seed to run (sweep start when -seeds is set)")
		classes = flag.String("classes", "all", "attack classes: comma list, bitmask, or all")
		plan    = flag.String("plan", "", "fault plan name (default: per-seed rotation)")
		rotate  = flag.Bool("rotate", true, "rotate fault plans per seed when -plan is empty")
		workers = flag.Int("workers", 4, "virtual worker count")
		corpus  = flag.String("corpus", "", "directory for failing-seed repro files")
		quiet   = flag.Bool("quiet", false, "print failures only")
	)
	flag.Parse()

	cls, err := advprog.ParseClasses(*classes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stfuzz:", err)
		os.Exit(2)
	}
	n := *seeds
	if n <= 0 {
		n = 1
	}

	failures := 0
	for s := *seed; s < *seed+uint64(n); s++ {
		pl := *plan
		if pl == "" && *rotate {
			pl = advprog.PlanForSeed(s)
		}
		err := run(s, cls, pl, *workers)
		if err == nil {
			if !*quiet {
				fmt.Printf("ok   seed=%d classes=%s plan=%q\n", s, cls, pl)
			}
			continue
		}
		failures++
		minCls, minErr := shrink(s, cls, pl, *workers, err)
		fmt.Printf("FAIL seed=%d classes=%s plan=%q\n     %v\n", s, minCls, pl, minErr)
		fmt.Printf("     repro: go run ./cmd/stfuzz -seed %d -classes %d -plan %q -workers %d\n",
			s, uint8(minCls), pl, *workers)
		if *corpus != "" {
			if werr := writeRepro(*corpus, s, minCls, pl, *workers, minErr); werr != nil {
				fmt.Fprintln(os.Stderr, "stfuzz:", werr)
			}
		}
	}
	if failures > 0 {
		fmt.Printf("stfuzz: %d of %d seeds failed\n", failures, n)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Printf("stfuzz: %d seeds clean\n", n)
	}
}

func run(seed uint64, cls advprog.Class, plan string, workers int) error {
	p := advprog.FromSeed(seed, cls)
	return advprog.Verify(p, advprog.VerifyOpts{
		Workers: workers,
		Engines: []core.Engine{core.EngineSequential, core.EngineParallel, core.EngineThroughput},
		Plan:    plan,
	})
}

// shrink greedily minimizes a failing class set: drop one class at a time,
// keeping the drop whenever the failure still reproduces. The result is a
// 1-minimal repro — removing any single remaining class makes it pass.
func shrink(seed uint64, cls advprog.Class, plan string, workers int, orig error) (advprog.Class, error) {
	minErr := orig
	for bit := advprog.Class(1); bit < advprog.AllClasses; bit <<= 1 {
		if cls&bit == 0 || cls == bit {
			continue
		}
		if err := run(seed, cls&^bit, plan, workers); err != nil {
			cls &^= bit
			minErr = err
		}
	}
	return cls, minErr
}

func writeRepro(dir string, seed uint64, cls advprog.Class, plan string, workers int, err error) error {
	if mkErr := os.MkdirAll(dir, 0o755); mkErr != nil {
		return mkErr
	}
	name := filepath.Join(dir, fmt.Sprintf("seed-%d.txt", seed))
	body := fmt.Sprintf("seed=%d\nclasses=%s (%d)\nplan=%q\nworkers=%d\nerror=%v\nrepro: go run ./cmd/stfuzz -seed %d -classes %d -plan %q -workers %d\n",
		seed, cls, uint8(cls), plan, workers, err, seed, uint8(cls), plan, workers)
	return os.WriteFile(name, []byte(body), 0o644)
}
