// Command promlint validates Prometheus text exposition format (version
// 0.0.4) the way the repository's serving CI consumes it: TYPE lines must
// precede their samples, names and values must be well-formed, and every
// histogram must carry a monotone cumulative bucket series ending in +Inf
// that agrees with its _count.
//
// Usage:
//
//	curl -s localhost:8135/metrics?format=prom | promlint
//	promlint metrics.prom
//
// Exit status 0 when the input is clean, 1 on the first violation (printed
// to stderr), 2 on usage errors.
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

func main() {
	var in io.Reader = os.Stdin
	name := "<stdin>"
	switch len(os.Args) {
	case 1:
	case 2:
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "promlint:", err)
			os.Exit(2)
		}
		defer f.Close()
		in, name = f, os.Args[1]
	default:
		fmt.Fprintln(os.Stderr, "usage: promlint [file]")
		os.Exit(2)
	}
	if err := obs.CheckExposition(in); err != nil {
		fmt.Fprintf(os.Stderr, "promlint: %s: %v\n", name, err)
		os.Exit(1)
	}
}
