// Command stpost shows the postprocessor's work on a benchmark: the
// descriptor table (Section 3.3) and, optionally, the full instruction
// listing with augmented and pure epilogues.
//
// Usage:
//
//	stpost -app fib            # descriptor table
//	stpost -app fib -dis       # plus disassembly
//	stpost -app fib -seq       # the sequential elision instead
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/apps"
	"repro/internal/figures"
)

func main() {
	var (
		app = flag.String("app", "fib", "benchmark name")
		dis = flag.Bool("dis", false, "disassemble the linked program")
		seq = flag.Bool("seq", false, "use the sequential elision")
	)
	flag.Parse()

	variant := apps.ST
	if *seq {
		variant = apps.Seq
	}
	w, err := figures.Workload(*app, figures.Quick, variant)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stpost:", err)
		os.Exit(2)
	}
	prog, err := w.Compile()
	if err != nil {
		fmt.Fprintln(os.Stderr, "stpost:", err)
		os.Exit(1)
	}

	fmt.Printf("%s (%s): %d procedures, %d instructions, max args region %d words\n\n",
		w.Name, w.Variant, len(prog.Descs), len(prog.Code), prog.MaxArgsOut)
	fmt.Printf("%-14s %7s %7s %9s %7s %10s %6s %s\n",
		"procedure", "entry", "end", "pure-epi", "frame", "args-region", "aug", "fork points")
	for _, d := range prog.Descs {
		fmt.Printf("%-14s %7d %7d %9d %7d %10d %6v %v\n",
			d.Name, d.Entry, d.End, d.PureEpilogue, d.FrameSize, d.MaxSPStore, d.Augmented, d.ForkPoints)
	}
	if *dis {
		fmt.Println()
		for pc, in := range prog.Code {
			if d := prog.DescFor(int64(pc)); d != nil && d.Entry == int64(pc) {
				fmt.Printf("\n%s:\n", d.Name)
			}
			fmt.Printf("%6d  %v\n", pc, in)
		}
	}
}
