// Command sttrace runs a benchmark under the parallel runtime and prints
// its migration-level event timeline: steal requests, steals, rejects,
// ready-queue resumes, idle transitions, and the halt — the observable
// behaviour of the Section 4 protocol in virtual time. Steal rows carry the
// migrated thread's identity (top frame, resume pc) and the request→steal
// latency.
//
// With the observability flags it also exports the run through internal/obs:
// -chrome writes a Perfetto-loadable Chrome trace, -metrics dumps the
// metrics registry as JSON, and -profile prints the phase breakdown and the
// sampling profiler's top table.
//
// Usage:
//
//	sttrace -app fib -workers 4
//	sttrace -app cilksort -workers 8 -mode cilk -summary
//	sttrace -app fib -workers 4 -chrome trace.json -profile
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/obs"
	"repro/internal/sched"
)

func main() {
	var (
		app       = flag.String("app", "pingpong", "benchmark name")
		mode      = flag.String("mode", "st", "st or cilk")
		workers   = flag.Int("workers", 4, "worker count")
		seed      = flag.Uint64("seed", 1, "scheduler seed")
		full      = flag.Bool("full", false, "paper-scale input")
		summary   = flag.Bool("summary", false, "print event counts only")
		chrome    = flag.String("chrome", "", "write Chrome trace_event JSON to this file")
		metrics   = flag.String("metrics", "", "write the metrics registry snapshot to this file")
		profile   = flag.Bool("profile", false, "print the phase breakdown and profiler top table")
		engine    = flag.String("engine", "default", "host engine: sequential, parallel or throughput (identical traces)")
		hostprocs = flag.Int("hostprocs", 0, "host cores for the parallel engines (0 = all)")
	)
	flag.Parse()

	sc := figures.Quick
	if *full {
		sc = figures.Full
	}
	var w *apps.Workload
	var err error
	if *app == "pingpong" {
		w = apps.PingPong(20, apps.ST)
	} else {
		w, err = figures.Workload(*app, sc, apps.ST)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sttrace:", err)
			os.Exit(2)
		}
	}

	eng, err := core.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sttrace:", err)
		os.Exit(2)
	}
	cfg := core.Config{
		Mode:      core.StackThreads,
		Workers:   *workers,
		Seed:      *seed,
		Engine:    eng,
		HostProcs: *hostprocs,
		Events:    &sched.EventLog{},
	}
	if *mode == "cilk" {
		cfg.Mode = core.Cilk
	}
	var c *obs.Collector
	if *chrome != "" || *metrics != "" || *profile {
		c = obs.New()
		cfg.Obs = c
	}
	res, err := core.Run(w, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sttrace:", err)
		os.Exit(1)
	}

	fmt.Printf("app=%s mode=%s workers=%d: result %d in %d cycles, %d steals\n\n",
		*app, *mode, *workers, res.RV, res.Time, res.Steals)
	if *summary {
		for k, n := range cfg.Events.Counts() {
			fmt.Printf("%10s %d\n", k, n)
		}
	} else {
		cfg.Events.Dump(os.Stdout)
	}

	if *profile {
		fmt.Println()
		c.WriteReport(os.Stdout)
		fmt.Println()
		c.WriteTop(os.Stdout, 10)
	}
	if *metrics != "" {
		b, err := c.Metrics.MarshalJSON()
		if err == nil {
			err = os.WriteFile(*metrics, append(b, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "sttrace: metrics:", err)
			os.Exit(1)
		}
		fmt.Printf("\nmetrics snapshot written to %s\n", *metrics)
	}
	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err == nil {
			err = c.WriteChromeTrace(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "sttrace: chrome trace:", err)
			os.Exit(1)
		}
		fmt.Printf("chrome trace written to %s (load in ui.perfetto.dev)\n", *chrome)
	}
}
