// Command sttrace runs a benchmark under the parallel runtime and prints
// its migration-level event timeline: steal requests, steals, rejects,
// ready-queue resumes, idle transitions, and the halt — the observable
// behaviour of the Section 4 protocol in virtual time.
//
// Usage:
//
//	sttrace -app fib -workers 4
//	sttrace -app cilksort -workers 8 -mode cilk -summary
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/sched"
)

func main() {
	var (
		app     = flag.String("app", "pingpong", "benchmark name")
		mode    = flag.String("mode", "st", "st or cilk")
		workers = flag.Int("workers", 4, "worker count")
		seed    = flag.Uint64("seed", 1, "scheduler seed")
		full    = flag.Bool("full", false, "paper-scale input")
		summary = flag.Bool("summary", false, "print event counts only")
	)
	flag.Parse()

	sc := figures.Quick
	if *full {
		sc = figures.Full
	}
	var w *apps.Workload
	var err error
	if *app == "pingpong" {
		w = apps.PingPong(20, apps.ST)
	} else {
		w, err = figures.Workload(*app, sc, apps.ST)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sttrace:", err)
			os.Exit(2)
		}
	}

	cfg := core.Config{
		Mode:    core.StackThreads,
		Workers: *workers,
		Seed:    *seed,
		Events:  &sched.EventLog{},
	}
	if *mode == "cilk" {
		cfg.Mode = core.Cilk
	}
	res, err := core.Run(w, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sttrace:", err)
		os.Exit(1)
	}

	fmt.Printf("app=%s mode=%s workers=%d: result %d in %d cycles, %d steals\n\n",
		*app, *mode, *workers, res.RV, res.Time, res.Steals)
	if *summary {
		for k, n := range cfg.Events.Counts() {
			fmt.Printf("%10s %d\n", k, n)
		}
		return
	}
	cfg.Events.Dump(os.Stdout)
}
