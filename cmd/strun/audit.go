package main

import "flag"

// addAuditFlags registers the live-auditor cadence flags on fs.
// -audit-every is the canonical name (shared with stbench and the
// adversarial harness); -audit is the original spelling, kept as an alias.
func addAuditFlags(fs *flag.FlagSet) (every, alias *int64) {
	every = fs.Int64("audit-every", 0, "audit the paper's 3.2 invariants every N scheduler picks (0 = off)")
	alias = fs.Int64("audit", 0, "alias for -audit-every")
	return every, alias
}

// auditCadence resolves the effective cadence: the canonical flag wins,
// then the alias; zero means no auditing.
func auditCadence(every, alias int64) int64 {
	if every > 0 {
		return every
	}
	return alias
}
