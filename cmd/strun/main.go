// Command strun runs one benchmark in one execution mode and prints the
// result and runtime statistics.
//
// Usage:
//
//	strun -app fib -mode st -workers 8
//	strun -app cilksort -mode seq -full
//	strun -app heat -mode cilk -workers 32 -cpu alpha
//	strun -app fib -workers 8 -fault steal-storm:3 -audit 64   # chaos + live auditing
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/figures"
	"repro/internal/invariant"
	"repro/internal/isa"
)

func main() {
	var (
		app       = flag.String("app", "fib", "benchmark name (see -list)")
		mode      = flag.String("mode", "st", "execution mode: seq, st, cilk")
		workers   = flag.Int("workers", 1, "worker (virtual CPU) count")
		cpu       = flag.String("cpu", "sparc", "cost model: sparc, x86, mips, alpha")
		full      = flag.Bool("full", false, "paper-scale input")
		seed      = flag.Uint64("seed", 1, "scheduler seed")
		check     = flag.Bool("check", false, "enable the stack-invariant checker")
		list      = flag.Bool("list", false, "list benchmarks and exit")
		engine    = flag.String("engine", "default", "host engine: sequential, parallel or throughput (identical results)")
		hostprocs = flag.Int("hostprocs", 0, "host cores for the parallel engines (0 = all)")
		maxcycles = flag.Int64("maxcycles", 0, "abort after this many total work cycles (0 = unlimited)")
		faultFlag = flag.String("fault", "", "deterministic fault plan, name[:seed] (see -list-faults)")
		listF     = flag.Bool("list-faults", false, "list named fault plans and exit")
		jit       = flag.Bool("jit", false, "enable the interpreter trace JIT (identical results; host speed only)")
	)
	auditEvery, audit := addAuditFlags(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, n := range figures.BenchNames {
			fmt.Println(n)
		}
		return
	}
	if *listF {
		for _, n := range fault.PlanNames() {
			fmt.Println(n)
		}
		return
	}

	sc := figures.Quick
	if *full {
		sc = figures.Full
	}
	eng, err := core.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "strun:", err)
		os.Exit(2)
	}
	plan, err := fault.ParsePlan(*faultFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "strun:", err)
		os.Exit(2)
	}
	inj := fault.New(plan)
	var aud *invariant.Auditor
	if n := auditCadence(*auditEvery, *audit); n > 0 {
		aud = invariant.New(n)
	}
	variant := apps.ST
	cfg := core.Config{
		Workers:         *workers,
		CPU:             isa.CostModelByName(*cpu),
		Seed:            *seed,
		CheckInvariants: *check,
		Engine:          eng,
		HostProcs:       *hostprocs,
		MaxWorkCycles:   *maxcycles,
		Fault:           inj,
		Audit:           aud,
		JIT:             *jit,
		Out:             os.Stdout,
	}
	switch *mode {
	case "seq":
		variant = apps.Seq
		cfg.Mode = core.Sequential
	case "st":
		cfg.Mode = core.StackThreads
	case "cilk":
		cfg.Mode = core.Cilk
	default:
		fmt.Fprintf(os.Stderr, "strun: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if cfg.CPU == nil {
		fmt.Fprintf(os.Stderr, "strun: unknown cpu %q\n", *cpu)
		os.Exit(2)
	}

	w, err := figures.Workload(*app, sc, variant)
	if err != nil {
		fmt.Fprintln(os.Stderr, "strun:", err)
		os.Exit(2)
	}
	t0 := time.Now()
	res, err := core.Run(w, cfg)
	wall := time.Since(t0)
	if err != nil {
		var viol *invariant.Violation
		if errors.As(err, &viol) {
			// The auditor caught a broken machine state: show the dump.
			fmt.Fprintln(os.Stderr, "strun:", viol)
			fmt.Fprintln(os.Stderr, viol.Dump)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "strun:", err)
		os.Exit(1)
	}
	fmt.Printf("app=%s mode=%s workers=%d cpu=%s engine=%v\n", *app, *mode, *workers, *cpu, eng)
	fmt.Printf("result        %d (verified)\n", res.RV)
	fmt.Printf("elapsed       %d cycles\n", res.Time)
	fmt.Printf("host          %.3fs wall-clock (%.1f Mcycles/s)\n",
		wall.Seconds(), float64(res.WorkCycles)/1e6/wall.Seconds())
	fmt.Printf("work          %d cycles over %d instructions\n", res.WorkCycles, res.Instrs)
	fmt.Printf("steals        %d (attempts %d, rejects %d)\n", res.Steals, res.Attempts, res.Rejects)
	if inj != nil {
		counts := inj.Counts()
		sites := make([]string, 0, len(counts))
		for site := range counts {
			sites = append(sites, site)
		}
		sort.Strings(sites)
		parts := make([]string, 0, len(sites))
		for _, site := range sites {
			parts = append(parts, fmt.Sprintf("%s=%d", site, counts[site]))
		}
		detail := strings.Join(parts, " ")
		if detail == "" {
			detail = "none fired"
		}
		fmt.Printf("faults        %d injected (plan %s): %s\n", inj.Total(), inj.Plan().String(), detail)
	}
	if aud != nil {
		fmt.Printf("audits        %d passed (every %d picks)\n",
			aud.Audits(), auditCadence(*auditEvery, *audit))
	}
	for i, st := range res.Stats {
		fmt.Printf("worker %-3d    instrs=%d calls=%d suspends=%d restarts=%d exports=%d shrinks=%d extends=%d stack-high=%d\n",
			i, st.Instrs, st.Calls, st.Suspends, st.Restarts, st.Exports, st.Shrinks, st.Extends, st.StackHighWater)
	}
}
