package main

import (
	"flag"
	"testing"
)

// TestAuditFlagParsing covers the -audit-every / -audit pair: either
// spelling sets the cadence, the canonical name wins when both are given,
// and the default is off.
func TestAuditFlagParsing(t *testing.T) {
	cases := []struct {
		args []string
		want int64
	}{
		{nil, 0},
		{[]string{"-audit-every", "1"}, 1},
		{[]string{"-audit", "64"}, 64},
		{[]string{"-audit-every", "8", "-audit", "64"}, 8},
		{[]string{"-audit", "64", "-audit-every", "8"}, 8},
		{[]string{"-audit-every", "0", "-audit", "5"}, 5},
	}
	for _, c := range cases {
		fs := flag.NewFlagSet("strun", flag.ContinueOnError)
		every, alias := addAuditFlags(fs)
		if err := fs.Parse(c.args); err != nil {
			t.Fatalf("%v: %v", c.args, err)
		}
		if got := auditCadence(*every, *alias); got != c.want {
			t.Errorf("%v: cadence %d, want %d", c.args, got, c.want)
		}
	}
}
