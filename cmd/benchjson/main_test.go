package main

import (
	"strings"
	"testing"
)

func TestParseFloors(t *testing.T) {
	floors, err := parseFloors("BenchmarkEngineSpeedup/throughput:host-speedup:1.8, A:b:2")
	if err != nil {
		t.Fatal(err)
	}
	want := []floorSpec{
		{"BenchmarkEngineSpeedup/throughput", "host-speedup", 1.8},
		{"A", "b", 2},
	}
	if len(floors) != len(want) {
		t.Fatalf("floors = %+v", floors)
	}
	for i := range want {
		if floors[i] != want[i] {
			t.Fatalf("floors[%d] = %+v, want %+v", i, floors[i], want[i])
		}
	}
	for _, bad := range []string{"x", "a:b", "a:b:zero"} {
		if _, err := parseFloors(bad); err == nil {
			t.Errorf("parseFloors(%q) accepted", bad)
		}
	}
	if floors, err := parseFloors(""); err != nil || len(floors) != 0 {
		t.Fatalf("empty spec: %v, %v", floors, err)
	}
}

func TestCheckFloors(t *testing.T) {
	pr := &Doc{Benchmarks: map[string]map[string]float64{
		"BenchmarkEngineSpeedup/throughput": {"host-speedup": 2.1, "host-cores": 4},
	}}
	ok := []floorSpec{{"BenchmarkEngineSpeedup/throughput", "host-speedup", 1.8}}
	if bad := checkFloors(pr, ok); len(bad) != 0 {
		t.Fatalf("floor met but reported: %v", bad)
	}
	low := []floorSpec{{"BenchmarkEngineSpeedup/throughput", "host-speedup", 2.5}}
	bad := checkFloors(pr, low)
	if len(bad) != 1 || !strings.Contains(bad[0], "below floor") {
		t.Fatalf("missed floor not reported: %v", bad)
	}
	missing := []floorSpec{{"BenchmarkNope", "host-speedup", 1}}
	bad = checkFloors(pr, missing)
	if len(bad) != 1 || !strings.Contains(bad[0], "missing") {
		t.Fatalf("missing benchmark not reported: %v", bad)
	}
}
