// Command benchjson converts `go test -bench` output into a stable JSON
// document and gates pull requests against a committed baseline.
//
// Convert:
//
//	go test -bench=. -benchtime=1x -run='^$' ./... | benchjson -out BENCH_PR.json
//
// Gate (exit status 1 on regression):
//
//	benchjson -check -baseline BENCH_BASELINE.json -pr BENCH_PR.json
//
// Gate against an absolute floor (for benefit metrics, where the tolerance
// check's bigger-is-worse convention is backwards):
//
//	benchjson -check -pr BENCH_PR.json \
//	    -floor 'BenchmarkEngineSpeedup/throughput:host-speedup:1.8'
//
// Only deterministic virtual-time metrics are gated by default: figures like
// st-rel-avg or st/cilk are pure functions of the simulated configuration
// and reproduce exactly on any host, so a >tolerance change is a real
// regression, never runner noise. Host-dependent metrics (ns/op, vcycles/s,
// host-speedup) are recorded for trend-watching and gated only with
// -gate-host.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// gatedUnits are the metric units compared against the baseline by default.
var gatedUnits = map[string]bool{
	"st-rel-avg":             true,
	"st-rel-seq":             true,
	"cilk-rel-seq":           true,
	"st/cilk":                true,
	"vcycles/iter":           true,
	"vcycles/round":          true,
	"overhead-vcycles/steal": true,
	"steals":                 true,
}

// hostUnits vary with the machine running the benchmark.
var hostUnits = map[string]bool{
	"ns/op":          true,
	"B/op":           true,
	"allocs/op":      true,
	"vcycles/s":      true,
	"host-speedup":   true,
	"host-cores":     true,
	"host-ns/vcycle": true,
}

// Doc is the JSON document: benchmark name → metric unit → value.
type Doc struct {
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

// parse reads `go test -bench` output. Each result line looks like
//
//	BenchmarkName-8  <tab> 1 <tab> 123 ns/op <tab> 1.5 st-rel-avg
//
// with value/unit pairs after the iteration count.
func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Benchmarks: map[string]map[string]float64{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip the -GOMAXPROCS suffix
			}
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not an iteration count: not a result line
		}
		metrics := doc.Benchmarks[name]
		if metrics == nil {
			metrics = map[string]float64{}
			doc.Benchmarks[name] = metrics
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: %s: bad value %q", name, fields[i])
			}
			metrics[fields[i+1]] = v
		}
	}
	return doc, sc.Err()
}

func load(path string) (*Doc, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Doc
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("benchjson: %s: %w", path, err)
	}
	return &doc, nil
}

func write(doc *Doc, path string) error {
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "" || path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// check compares pr against base and returns the regression report lines.
// A non-nil only set replaces the default gating policy entirely: exactly
// the listed units are gated, whether host-dependent or not.
func check(base, pr *Doc, tolerance float64, gateHost bool, only map[string]bool) (bad, skipped []string) {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		units := make([]string, 0, len(base.Benchmarks[name]))
		for u := range base.Benchmarks[name] {
			units = append(units, u)
		}
		sort.Strings(units)
		for _, unit := range units {
			want := base.Benchmarks[name][unit]
			if only != nil {
				if !only[unit] {
					continue
				}
			} else if !gatedUnits[unit] && !(gateHost && hostUnits[unit]) {
				continue
			}
			got, ok := pr.Benchmarks[name][unit]
			if !ok {
				bad = append(bad, fmt.Sprintf("%s %s: missing from PR results", name, unit))
				continue
			}
			if want == 0 {
				if got != 0 {
					bad = append(bad, fmt.Sprintf("%s %s: baseline 0, got %g", name, unit, got))
				}
				continue
			}
			// A regression is the metric getting worse: every gated metric
			// is a cost (relative overhead, cycles), so worse means larger.
			rel := got/want - 1
			if rel > tolerance {
				bad = append(bad, fmt.Sprintf("%s %s: %.4g -> %.4g (%+.1f%% > %.0f%% tolerance)",
					name, unit, want, got, 100*rel, 100*tolerance))
			} else if math.Abs(rel) > tolerance {
				skipped = append(skipped, fmt.Sprintf("%s %s: %.4g -> %.4g (improved %.1f%%)",
					name, unit, want, got, -100*rel))
			}
		}
	}
	return bad, skipped
}

// floorSpec is one `-floor benchmark:unit:min` requirement: the PR value of
// the metric must be at least min. Floors gate benefit metrics (speedups),
// where the tolerance check's larger-is-worse convention points the wrong
// way, and need no baseline entry at all.
type floorSpec struct {
	name string
	unit string
	min  float64
}

func parseFloors(specs string) ([]floorSpec, error) {
	var floors []floorSpec
	for _, s := range strings.Split(specs, ",") {
		if s = strings.TrimSpace(s); s == "" {
			continue
		}
		parts := strings.Split(s, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("bad -floor %q (want benchmark:unit:min)", s)
		}
		min, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad -floor minimum %q: %v", parts[2], err)
		}
		floors = append(floors, floorSpec{name: parts[0], unit: parts[1], min: min})
	}
	return floors, nil
}

// checkFloors returns a failure line per floor the PR results miss.
func checkFloors(pr *Doc, floors []floorSpec) (bad []string) {
	for _, f := range floors {
		got, ok := pr.Benchmarks[f.name][f.unit]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s %s: missing from PR results (floor %g)", f.name, f.unit, f.min))
			continue
		}
		if got < f.min {
			bad = append(bad, fmt.Sprintf("%s %s: %.4g below floor %g", f.name, f.unit, got, f.min))
		}
	}
	return bad
}

func main() {
	var (
		in        = flag.String("in", "", "benchmark output to convert (default stdin)")
		out       = flag.String("out", "", "JSON output path (default stdout)")
		doCheck   = flag.Bool("check", false, "compare -pr against -baseline instead of converting")
		baseline  = flag.String("baseline", "BENCH_BASELINE.json", "baseline JSON for -check")
		pr        = flag.String("pr", "BENCH_PR.json", "PR JSON for -check")
		tolerance = flag.Float64("tolerance", 0.10, "allowed relative regression for gated metrics")
		gateHost  = flag.Bool("gate-host", false, "also gate host-dependent metrics (ns/op, vcycles/s, ...)")
		only      = flag.String("only", "", "comma-separated metric units: gate exactly these, replacing the default set")
		floor     = flag.String("floor", "", "comma-separated benchmark:unit:min specs: fail if the PR value is below min")
	)
	flag.Parse()

	var onlyUnits map[string]bool
	if *only != "" {
		onlyUnits = map[string]bool{}
		for _, u := range strings.Split(*only, ",") {
			if u = strings.TrimSpace(u); u != "" {
				onlyUnits[u] = true
			}
		}
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	floors, err := parseFloors(*floor)
	if err != nil {
		fail(err)
	}
	if *doCheck || len(floors) > 0 {
		prDoc, err := load(*pr)
		if err != nil {
			fail(err)
		}
		var bad []string
		if *doCheck {
			base, err := load(*baseline)
			if err != nil {
				fail(err)
			}
			var improved []string
			bad, improved = check(base, prDoc, *tolerance, *gateHost, onlyUnits)
			if len(bad) == 0 {
				fmt.Printf("benchjson: %d benchmarks within %.0f%% of baseline\n",
					len(base.Benchmarks), 100**tolerance)
			}
			for _, line := range improved {
				fmt.Println("note:", line)
			}
		}
		floorBad := checkFloors(prDoc, floors)
		if len(floorBad) == 0 && len(floors) > 0 {
			fmt.Printf("benchjson: %d floor requirements met\n", len(floors))
		}
		bad = append(bad, floorBad...)
		if len(bad) > 0 {
			for _, line := range bad {
				fmt.Println("REGRESSION:", line)
			}
			os.Exit(1)
		}
		return
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		r = f
	}
	doc, err := parse(r)
	if err != nil {
		fail(err)
	}
	if len(doc.Benchmarks) == 0 {
		fail(fmt.Errorf("no benchmark results found in input"))
	}
	if err := write(doc, *out); err != nil {
		fail(err)
	}
}
