// Package repro_test holds the benchmark harness of the reproduction: one
// testing.B benchmark per table and figure of the paper's evaluation
// (Section 8). Each benchmark regenerates its figure's rows at quick scale
// and reports the figure's headline numbers as custom metrics; the stbench
// command produces the full-size versions.
//
//	go test -bench=. -benchmem
package repro_test

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/isa"
	"repro/internal/spec"
)

// benchSpec regenerates one SPEC overhead figure (17-20) and reports the
// average relative execution time of the full "st" setting.
func benchSpec(b *testing.B, cpuName string) {
	cpu := isa.CostModelByName(cpuName)
	var avg float64
	for i := 0; i < b.N; i++ {
		sum := 0.0
		for _, p := range spec.Profiles() {
			o, err := spec.RunOverhead(cpu, p)
			if err != nil {
				b.Fatal(err)
			}
			sum += o.Relative("st")
		}
		avg = sum / float64(len(spec.Profiles()))
	}
	b.ReportMetric(avg, "st-rel-avg")
}

// BenchmarkFig17SpecSPARC regenerates Figure 17 (SPEC overhead, SPARC).
func BenchmarkFig17SpecSPARC(b *testing.B) { benchSpec(b, "sparc") }

// BenchmarkFig18SpecX86 regenerates Figure 18 (SPEC overhead, Pentium PRO).
func BenchmarkFig18SpecX86(b *testing.B) { benchSpec(b, "x86") }

// BenchmarkFig19SpecMips regenerates Figure 19 (SPEC overhead, Mips R10000).
func BenchmarkFig19SpecMips(b *testing.B) { benchSpec(b, "mips") }

// BenchmarkFig20SpecAlpha regenerates Figure 20 (SPEC overhead, Alpha).
func BenchmarkFig20SpecAlpha(b *testing.B) { benchSpec(b, "alpha") }

// BenchmarkFig21Uniprocessor regenerates Figure 21: per benchmark, the
// uniprocessor execution time of StackThreads/MP and Cilk relative to the
// sequential C elision.
func BenchmarkFig21Uniprocessor(b *testing.B) {
	for _, name := range figures.BenchNames {
		name := name
		b.Run(name, func(b *testing.B) {
			var st, ck float64
			for i := 0; i < b.N; i++ {
				seqW, err := figures.Workload(name, figures.Quick, apps.Seq)
				if err != nil {
					b.Fatal(err)
				}
				seqRes, err := core.Run(seqW, core.Config{Mode: core.Sequential})
				if err != nil {
					b.Fatal(err)
				}
				stW, _ := figures.Workload(name, figures.Quick, apps.ST)
				stRes, err := core.Run(stW, core.Config{Mode: core.StackThreads, Workers: 1})
				if err != nil {
					b.Fatal(err)
				}
				ckW, _ := figures.Workload(name, figures.Quick, apps.ST)
				ckRes, err := core.Run(ckW, core.Config{Mode: core.Cilk, Workers: 1})
				if err != nil {
					b.Fatal(err)
				}
				st = float64(stRes.Time) / float64(seqRes.Time)
				ck = float64(ckRes.Time) / float64(seqRes.Time)
			}
			b.ReportMetric(st, "st-rel-seq")
			b.ReportMetric(ck, "cilk-rel-seq")
		})
	}
}

// BenchmarkFig22Scaling regenerates Figure 22: StackThreads/MP elapsed time
// relative to Cilk at each processor count, per benchmark.
func BenchmarkFig22Scaling(b *testing.B) {
	for _, name := range figures.BenchNames {
		for _, workers := range figures.ScalingWorkers {
			name, workers := name, workers
			b.Run(name+"/p="+itoa(workers), func(b *testing.B) {
				var ratio float64
				for i := 0; i < b.N; i++ {
					stW, err := figures.Workload(name, figures.Quick, apps.ST)
					if err != nil {
						b.Fatal(err)
					}
					stRes, err := core.Run(stW, core.Config{Mode: core.StackThreads, Workers: workers, Seed: 1})
					if err != nil {
						b.Fatal(err)
					}
					ckW, _ := figures.Workload(name, figures.Quick, apps.ST)
					ckRes, err := core.Run(ckW, core.Config{Mode: core.Cilk, Workers: workers, Seed: 1})
					if err != nil {
						b.Fatal(err)
					}
					ratio = float64(stRes.Time) / float64(ckRes.Time)
				}
				b.ReportMetric(ratio, "st/cilk")
			})
		}
	}
}

// BenchmarkTable2MachineThroughput measures the simulator itself: virtual
// cycles executed per host second on the Table 2 configuration (how fast
// the DES stand-in for the Enterprise 10000 runs).
func BenchmarkTable2MachineThroughput(b *testing.B) {
	var cycles int64
	for i := 0; i < b.N; i++ {
		w := apps.Fib(20, apps.ST)
		res, err := core.Run(w, core.Config{Mode: core.StackThreads, Workers: 8, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.WorkCycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "vcycles/s")
}

// BenchmarkEngineSpeedup runs a Figure-22-scale simulation under the
// sequential oracle and each host-parallel engine, checks the results are
// identical, and reports the wall-clock speedup. host-speedup approaches the
// host's core count on steal-heavy runs and is ~1 on a single-core host;
// host-cores records the context. On multi-core CI runners the throughput
// sub-benchmark is gated by an absolute floor (see ci.yml bench-speedup).
func BenchmarkEngineSpeedup(b *testing.B) {
	const workers = 16
	run := func(eng core.Engine) (*core.Result, time.Duration) {
		w := apps.Fib(22, apps.ST)
		t0 := time.Now()
		res, err := core.Run(w, core.Config{
			Mode: core.StackThreads, Workers: workers, Seed: 1, Engine: eng,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res, time.Since(t0)
	}
	for _, eng := range []core.Engine{core.EngineParallel, core.EngineThroughput} {
		eng := eng
		b.Run(eng.String(), func(b *testing.B) {
			var seqT, parT time.Duration
			for i := 0; i < b.N; i++ {
				seqRes, st := run(core.EngineSequential)
				parRes, pt := run(eng)
				if !reflect.DeepEqual(seqRes, parRes) {
					b.Fatalf("engines diverged: seq %+v vs %s %+v", seqRes, eng, parRes)
				}
				seqT += st
				parT += pt
			}
			b.ReportMetric(seqT.Seconds()/parT.Seconds(), "host-speedup")
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "host-cores")
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
